package journal

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
)

// ErrClosed reports an operation on a closed Writer.
var ErrClosed = errors.New("journal: writer closed")

const (
	// defaultQueue bounds the append queue. Transitions and snapshots
	// are management-rate events, so the queue is generous; if it ever
	// fills (a stalled disk), appends are dropped and counted rather
	// than ever blocking the caller.
	defaultQueue = 1024
	// maxBatch caps how many queued frames one fsync covers.
	maxBatch = 256
)

// wreq is one unit of work for the writer goroutine.
type wreq struct {
	// frame is an encoded record to append.
	frame []byte
	// compact, when set, rewrites the journal to just this frame
	// (after the magic header) before later requests append.
	compact []byte
	// ack, when non-nil, receives the writer's sticky error after this
	// request's batch has been written and synced — the Flush barrier.
	ack chan error
}

// Writer appends entries to a journal file from a dedicated goroutine:
// Append never blocks and never touches the disk on the caller's
// stack, so journaling can hang off lifecycle hooks without putting
// I/O on the paths that fire them. Queued frames are drained in
// batches, written, and covered by a single fsync per batch.
//
// Write and sync failures are sticky: the first one is reported by
// Err (and by every later Flush), while subsequent appends are still
// attempted — a transiently failing disk loses records (visible via
// Err) rather than wedging the campaign. A full queue drops the
// append and counts it in Drops.
type Writer struct {
	ch   chan wreq
	quit chan struct{}
	done chan struct{}

	// drops counts appends discarded because the queue was full.
	drops atomic.Uint64

	errMu sync.Mutex
	err   error

	f         *os.File
	closeOnce sync.Once
}

// Open replays the journal at path (creating it if absent), truncates
// any torn tail back to the last valid frame, and returns a running
// Writer positioned to append, along with the replayed State. Damage
// beyond a torn tail returns a *CorruptError and no writer: the caller
// decides whether to quarantine the file (see OpenOrQuarantine).
func Open(path string) (*Writer, State, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, State{}, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	st, validEnd, derr := Decode(data)
	if derr != nil {
		return nil, st, fmt.Errorf("replaying %s: %w", path, derr)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, State{}, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	if validEnd < len(magic) {
		// Fresh file, or a tail torn inside the header: (re)write it.
		if err := rewriteHeader(f); err != nil {
			f.Close()
			return nil, State{}, err
		}
	} else {
		if validEnd < len(data) {
			if err := f.Truncate(int64(validEnd)); err != nil {
				f.Close()
				return nil, State{}, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
			}
		}
		if _, err := f.Seek(int64(validEnd), io.SeekStart); err != nil {
			f.Close()
			return nil, State{}, fmt.Errorf("journal: seeking %s: %w", path, err)
		}
	}
	w := &Writer{
		ch:   make(chan wreq, defaultQueue),
		quit: make(chan struct{}),
		done: make(chan struct{}),
		f:    f,
	}
	go w.loop()
	return w, st, nil
}

// OpenOrQuarantine opens the journal at path like Open, but a corrupt
// journal is renamed aside to path+".corrupt" and a fresh journal is
// started in its place — a mediator must come up even when its journal
// was damaged at rest; it just starts a new campaign history. The
// returned error is the corruption that was quarantined (the open
// itself succeeded; callers log it).
func OpenOrQuarantine(path string) (*Writer, State, error) {
	w, st, err := Open(path)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		return w, st, err
	}
	corrupt := err
	if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
		return nil, State{}, errors.Join(corrupt, rerr)
	}
	w, st, err = Open(path)
	if err != nil {
		return nil, State{}, errors.Join(corrupt, err)
	}
	return w, st, corrupt
}

// rewriteHeader resets f to a fresh, synced journal header.
func rewriteHeader(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncating %s: %w", f.Name(), err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seeking %s: %w", f.Name(), err)
	}
	if _, err := f.Write(magic); err != nil {
		return fmt.Errorf("journal: writing header of %s: %w", f.Name(), err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing header of %s: %w", f.Name(), err)
	}
	return nil
}

// Append enqueues one entry. It never blocks: when the queue is full
// (a stalled disk) the entry is dropped and counted in Drops. Appends
// racing Close may be silently discarded. Encoding failures are sticky
// errors, visible via Err.
func (w *Writer) Append(e Entry) {
	if w == nil {
		return
	}
	frame, err := encodeFrame(e)
	if err != nil {
		w.setErr(err)
		return
	}
	select {
	case w.ch <- wreq{frame: frame}:
	default:
		w.drops.Add(1)
	}
}

// Compact rewrites the journal to contain just e (typically a fresh
// snapshot of the state recovered at startup), bounding file growth
// across restarts. It blocks until the rewrite is synced.
func (w *Writer) Compact(e Entry) error {
	frame, err := encodeFrame(e)
	if err != nil {
		w.setErr(err)
		return err
	}
	return w.barrier(wreq{compact: frame})
}

// Flush blocks until every entry enqueued before it has been written
// and synced, then reports the writer's sticky error. Tests and
// shutdown paths use it; steady-state journaling never waits.
func (w *Writer) Flush() error {
	return w.barrier(wreq{})
}

// barrier submits req with an ack and waits for it.
func (w *Writer) barrier(req wreq) error {
	req.ack = make(chan error, 1)
	select {
	case w.ch <- req:
	case <-w.done:
		return ErrClosed
	}
	select {
	case err := <-req.ack:
		return err
	case <-w.done:
		return ErrClosed
	}
}

// Drops reports how many appends were discarded on a full queue.
func (w *Writer) Drops() uint64 {
	if w == nil {
		return 0
	}
	return w.drops.Load()
}

// Err reports the first write/sync/encode error, if any.
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

func (w *Writer) setErr(err error) {
	if err == nil {
		return
	}
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

// Close drains the queue, syncs, and closes the file. Safe to call
// more than once; concurrent Appends may be dropped.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.closeOnce.Do(func() { close(w.quit) })
	<-w.done
	return w.Err()
}

// loop is the writer goroutine: batch-drain, write, one fsync.
func (w *Writer) loop() {
	var batch []wreq
	for {
		select {
		case req := <-w.ch:
			batch = w.collect(batch[:0], req)
			w.commit(batch)
		case <-w.quit:
			for {
				select {
				case req := <-w.ch:
					batch = w.collect(batch[:0], req)
					w.commit(batch)
				default:
					if err := w.f.Close(); err != nil {
						w.setErr(err)
					}
					close(w.done)
					return
				}
			}
		}
	}
}

// collect drains up to maxBatch queued requests without blocking.
func (w *Writer) collect(batch []wreq, first wreq) []wreq {
	batch = append(batch, first)
	for len(batch) < maxBatch {
		select {
		case req := <-w.ch:
			batch = append(batch, req)
		default:
			return batch
		}
	}
	return batch
}

// commit writes one batch and covers it with a single fsync.
func (w *Writer) commit(batch []wreq) {
	wrote := false
	for _, req := range batch {
		if req.compact != nil {
			w.doCompact(req.compact)
		}
		if req.frame != nil {
			if _, err := w.f.Write(req.frame); err != nil {
				w.setErr(fmt.Errorf("journal: appending: %w", err))
			} else {
				wrote = true
			}
		}
	}
	if wrote {
		if err := w.f.Sync(); err != nil {
			w.setErr(fmt.Errorf("journal: syncing: %w", err))
		}
	}
	for _, req := range batch {
		if req.ack != nil {
			req.ack <- w.Err()
		}
	}
}

// doCompact rewrites the file to header + one frame, synced.
func (w *Writer) doCompact(frame []byte) {
	if err := rewriteHeader(w.f); err != nil {
		w.setErr(err)
		return
	}
	if _, err := w.f.Write(frame); err != nil {
		w.setErr(fmt.Errorf("journal: writing compacted snapshot: %w", err))
		return
	}
	if err := w.f.Sync(); err != nil {
		w.setErr(fmt.Errorf("journal: syncing compacted snapshot: %w", err))
	}
}
