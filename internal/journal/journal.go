// Package journal is the durable campaign journal: an append-only,
// CRC-framed record of everything a §4.1 upgrade campaign cannot afford
// to lose across a mediator crash — phase transitions with their
// lifecycle causes, release-set changes, and periodic snapshots of the
// Bayesian aggregation state (the JointCounts posterior inputs plus
// per-release counters). A restarted mediator replays the journal and
// resumes mid-campaign instead of resetting to OldOnly and discarding
// days of accumulated confidence.
//
// On-disk format: an 8-byte magic header, then frames of
//
//	uint32 LE payload length | uint32 LE CRC-32C (Castagnoli) | JSON payload
//
// Replay is torn-tail tolerant by construction: a final frame that is
// truncated, fails its CRC, or is NUL padding (all three are what a
// kill -9 or power cut between write and fsync leaves behind) is
// discarded and replay succeeds with everything before it. Damage that
// cannot be explained by a torn tail — a mid-journal CRC mismatch, a
// bad magic, an over-cap frame length — is a typed *CorruptError
// (errors.Is ErrCorrupt): the journal was corrupted at rest and the
// caller decides whether to quarantine it. Replay never panics and
// never silently mis-folds a damaged record into campaign state.
//
// This package is deliberately free of wall-clock and randomness
// (enforced by the detrand analyzer): replaying the same bytes always
// yields the same State. Entry timestamps are stamped by callers.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/monitor"
)

// ErrCorrupt reports journal damage that torn-tail recovery cannot
// explain. Match with errors.Is; the concrete type is *CorruptError.
var ErrCorrupt = errors.New("journal: corrupt")

// CorruptError locates unrecoverable journal damage.
type CorruptError struct {
	// Offset is the byte offset of the frame (or header) the damage was
	// detected in; everything before it replayed cleanly.
	Offset int64
	// Reason describes the damage.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: corrupt at byte %d: %s", e.Offset, e.Reason)
}

// Is implements errors.Is matching against ErrCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

func corruptf(off int, format string, args ...any) error {
	return &CorruptError{Offset: int64(off), Reason: fmt.Sprintf(format, args...)}
}

// magic identifies a campaign journal file (and its format version).
var magic = []byte("WSUJRNL1")

// MaxRecord caps one frame's payload. A corrupted length field can
// therefore never balloon a replay allocation past 1 MiB, and a
// snapshot that somehow exceeds the cap is refused at write time rather
// than poisoning the journal.
const MaxRecord = 1 << 20

// Kind tags what an Entry records.
type Kind string

const (
	// KindTransition: a phase transition, with its lifecycle cause.
	KindTransition Kind = "transition"
	// KindSnapshot: a periodic snapshot of campaign state; replay
	// resumes from the last one plus every entry after it.
	KindSnapshot Kind = "snapshot"
	// KindReleaseAdd: a release joined the unit's deployed set.
	KindReleaseAdd Kind = "release-add"
	// KindReleaseRemove: a release left the unit's deployed set.
	KindReleaseRemove Kind = "release-remove"
)

// Release identifies one deployed release for replay.
type Release struct {
	Version string `json:"version"`
	URL     string `json:"url"`
}

// Snapshot is the periodic full-state record: everything needed to
// resume a campaign without replaying its entire history.
type Snapshot struct {
	// Phase is the §4.1 phase at snapshot time.
	Phase lifecycle.Phase `json:"phase"`
	// Mode is the §4.2 operating mode (the owner's integer encoding).
	Mode int `json:"mode"`
	// Quorum is the adjudication quorum.
	Quorum int `json:"quorum"`
	// SwitchedAt is the demand count at the last automatic switch.
	SwitchedAt int `json:"switched_at,omitempty"`
	// Releases is the deployed release set at snapshot time.
	Releases []Release `json:"releases"`
	// Campaign is the monitor's aggregation state (joint record,
	// per-operation records, per-release counters).
	Campaign monitor.CampaignState `json:"campaign"`
}

// Entry is one journal record. Exactly one of the kind-specific fields
// is set, matching Kind. Time is a caller-stamped unix-nano timestamp
// (this package never reads the clock).
type Entry struct {
	Kind       Kind                  `json:"kind"`
	Time       int64                 `json:"t,omitempty"`
	Transition *lifecycle.Transition `json:"transition,omitempty"`
	Snapshot   *Snapshot             `json:"snapshot,omitempty"`
	Release    *Release              `json:"release,omitempty"`
}

// State is the fold of a replayed journal: the campaign position a
// restarted mediator should resume from.
type State struct {
	// Snapshot is the last snapshot replayed (nil when none was written
	// yet — an interrupted campaign younger than one snapshot interval).
	Snapshot *Snapshot
	// Phase is the latest known phase: the last snapshot's, advanced by
	// every transition after it. Zero when the journal had neither.
	Phase lifecycle.Phase
	// LastCause is the cause of the last replayed transition.
	LastCause lifecycle.Cause
	// Releases is the deployed set: the last snapshot's, edited by every
	// release add/remove after it.
	Releases []Release
	// Entries counts replayed records.
	Entries int
	// TransitionsAfterSnapshot counts phase transitions replayed after
	// the last snapshot (all of them when there was no snapshot).
	TransitionsAfterSnapshot int
	// TornTail reports that a truncated/unsynced final record was
	// discarded — expected after a crash, informational only.
	TornTail bool
}

// apply folds one entry into the state.
func (st *State) apply(e Entry) {
	switch e.Kind {
	case KindSnapshot:
		if e.Snapshot == nil {
			return
		}
		snap := *e.Snapshot
		snap.Releases = append([]Release(nil), e.Snapshot.Releases...)
		st.Snapshot = &snap
		st.Phase = snap.Phase
		st.LastCause = 0
		st.Releases = append(st.Releases[:0], snap.Releases...)
		st.TransitionsAfterSnapshot = 0
	case KindTransition:
		if e.Transition == nil {
			return
		}
		st.Phase = e.Transition.To
		st.LastCause = e.Transition.Cause
		st.TransitionsAfterSnapshot++
	case KindReleaseAdd:
		if e.Release == nil || e.Release.Version == "" {
			return
		}
		for i := range st.Releases {
			if st.Releases[i].Version == e.Release.Version {
				st.Releases[i] = *e.Release
				return
			}
		}
		st.Releases = append(st.Releases, *e.Release)
	case KindReleaseRemove:
		if e.Release == nil {
			return
		}
		for i := range st.Releases {
			if st.Releases[i].Version == e.Release.Version {
				st.Releases = append(st.Releases[:i], st.Releases[i+1:]...)
				return
			}
		}
	default:
		// Unknown kinds are skipped, not fatal: a journal written by a
		// newer mediator still replays its known record types.
	}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the per-frame prefix: length + CRC, both uint32 LE.
const frameHeader = 8

// Decode replays a journal image. It returns the folded state, the byte
// offset just past the last valid frame (the "valid end" — Open
// truncates a torn tail back to it), and an error only for damage that
// torn-tail recovery cannot explain (always a *CorruptError). An empty
// image is a fresh journal: zero State, offset 0, nil error.
func Decode(data []byte) (State, int, error) {
	var st State
	if len(data) == 0 {
		return st, 0, nil
	}
	if len(data) < len(magic) {
		if bytes.HasPrefix(magic, data) {
			// A crash between creating the file and syncing the header.
			st.TornTail = true
			return st, 0, nil
		}
		return st, 0, corruptf(0, "short file is not a journal header")
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return st, 0, corruptf(0, "bad magic %q", data[:len(magic)])
	}
	off := len(magic)
	for off < len(data) {
		if len(data)-off < frameHeader {
			st.TornTail = true
			break
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 && sum == 0 {
			// NUL padding: what a crashed filesystem leaves in the tail
			// block past the last synced write.
			st.TornTail = true
			break
		}
		if length > MaxRecord {
			return st, off, corruptf(off, "frame length %d exceeds cap %d", length, MaxRecord)
		}
		end := off + frameHeader + int(length)
		if end > len(data) {
			st.TornTail = true
			break
		}
		payload := data[off+frameHeader : end]
		if crc32.Checksum(payload, castagnoli) != sum {
			if end == len(data) {
				// The final frame: indistinguishable from a write torn
				// inside a sector, so recoverable by discarding it.
				st.TornTail = true
				break
			}
			return st, off, corruptf(off, "CRC mismatch on a non-final frame")
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			// The CRC matched, so these are the bytes the writer framed —
			// undecodable JSON means the journal is from a broken writer
			// or was doctored; either way torn-tail recovery cannot help.
			return st, off, corruptf(off, "undecodable entry: %v", err)
		}
		st.apply(e)
		st.Entries++
		off = end
	}
	return st, off, nil
}

// encodeFrame frames one entry for appending.
func encodeFrame(e Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding entry: %w", err)
	}
	if len(payload) > MaxRecord {
		return nil, fmt.Errorf("journal: entry of %d bytes exceeds record cap %d", len(payload), MaxRecord)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	return frame, nil
}
