package journal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/monitor"
)

// sampleEntries is a realistic campaign history: releases deploy, the
// campaign advances through Observation with snapshots, and a policy
// switch fires.
func sampleEntries() []Entry {
	return []Entry{
		{Kind: KindReleaseAdd, Time: 1, Release: &Release{Version: "1.0", URL: "http://old/"}},
		{Kind: KindReleaseAdd, Time: 2, Release: &Release{Version: "2.0", URL: "http://new/"}},
		{Kind: KindTransition, Time: 3, Transition: &lifecycle.Transition{
			From: lifecycle.PhaseOldOnly, To: lifecycle.PhaseObservation, Cause: lifecycle.CauseManual}},
		{Kind: KindSnapshot, Time: 4, Snapshot: &Snapshot{
			Phase:  lifecycle.PhaseObservation,
			Mode:   2,
			Quorum: 1,
			Releases: []Release{
				{Version: "1.0", URL: "http://old/"},
				{Version: "2.0", URL: "http://new/"},
			},
			Campaign: monitor.CampaignState{
				Joint: bayes.JointCounts{N: 120, BOnly: 3},
				PerOp: map[string]bayes.JointCounts{"add": {N: 120, BOnly: 3}},
			},
		}},
		{Kind: KindTransition, Time: 5, Transition: &lifecycle.Transition{
			From: lifecycle.PhaseObservation, To: lifecycle.PhaseParallel, Cause: lifecycle.CausePolicy, Demands: 150}},
	}
}

// journalBytes builds an on-disk image via the real writer.
func journalBytes(t *testing.T, entries []Entry) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "unit.journal")
	w, st, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st.Entries != 0 {
		t.Fatalf("fresh journal replayed %d entries", st.Entries)
	}
	for _, e := range entries {
		w.Append(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeRoundTrip(t *testing.T) {
	data := journalBytes(t, sampleEntries())
	st, validEnd, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if validEnd != len(data) {
		t.Fatalf("validEnd %d, file %d bytes", validEnd, len(data))
	}
	if st.TornTail {
		t.Fatal("clean journal reported a torn tail")
	}
	if st.Entries != 5 {
		t.Fatalf("Entries = %d, want 5", st.Entries)
	}
	if st.Phase != lifecycle.PhaseParallel {
		t.Fatalf("Phase = %v, want parallel", st.Phase)
	}
	if st.LastCause != lifecycle.CausePolicy {
		t.Fatalf("LastCause = %v, want policy", st.LastCause)
	}
	if st.TransitionsAfterSnapshot != 1 {
		t.Fatalf("TransitionsAfterSnapshot = %d, want 1", st.TransitionsAfterSnapshot)
	}
	if st.Snapshot == nil || st.Snapshot.Campaign.Joint.N != 120 {
		t.Fatalf("snapshot not replayed: %+v", st.Snapshot)
	}
	want := []Release{{Version: "1.0", URL: "http://old/"}, {Version: "2.0", URL: "http://new/"}}
	if !reflect.DeepEqual(st.Releases, want) {
		t.Fatalf("Releases = %+v, want %+v", st.Releases, want)
	}
}

func TestReleaseAddRemoveFold(t *testing.T) {
	entries := []Entry{
		{Kind: KindReleaseAdd, Release: &Release{Version: "1.0", URL: "http://a/"}},
		{Kind: KindReleaseAdd, Release: &Release{Version: "2.0", URL: "http://b/"}},
		{Kind: KindReleaseRemove, Release: &Release{Version: "1.0"}},
		{Kind: KindReleaseAdd, Release: &Release{Version: "2.0", URL: "http://b2/"}}, // re-add updates URL
	}
	st, _, err := Decode(journalBytes(t, entries))
	if err != nil {
		t.Fatal(err)
	}
	want := []Release{{Version: "2.0", URL: "http://b2/"}}
	if !reflect.DeepEqual(st.Releases, want) {
		t.Fatalf("Releases = %+v, want %+v", st.Releases, want)
	}
}

// Every truncation of a valid journal must replay cleanly to a prefix —
// the torn-tail property a kill -9 relies on.
func TestDecodeEveryTruncationIsCleanPrefix(t *testing.T) {
	data := journalBytes(t, sampleEntries())
	full, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		st, validEnd, err := Decode(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: Decode error %v", cut, err)
		}
		if st.Entries > full.Entries {
			t.Fatalf("cut at %d: replayed %d entries from a %d-entry journal", cut, st.Entries, full.Entries)
		}
		if validEnd > cut {
			t.Fatalf("cut at %d: validEnd %d past the data", cut, validEnd)
		}
		// Re-decoding the valid prefix must agree and be clean.
		st2, _, err := Decode(data[:validEnd])
		if err != nil {
			t.Fatalf("cut at %d: re-decode of valid prefix: %v", cut, err)
		}
		if st2.Entries != st.Entries || st2.Phase != st.Phase {
			t.Fatalf("cut at %d: prefix re-decode diverged: %+v vs %+v", cut, st2, st)
		}
	}
}

func TestDecodeNULPaddedTailIsTorn(t *testing.T) {
	data := journalBytes(t, sampleEntries())
	padded := append(append([]byte(nil), data...), make([]byte, 512)...)
	st, validEnd, err := Decode(padded)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !st.TornTail || st.Entries != 5 || validEnd != len(data) {
		t.Fatalf("NUL tail: torn=%v entries=%d validEnd=%d (want true, 5, %d)", st.TornTail, st.Entries, validEnd, len(data))
	}
}

func TestDecodeMidJournalCorruptionIsTyped(t *testing.T) {
	data := journalBytes(t, sampleEntries())
	// Flip a byte inside the first frame's payload (well before the
	// final frame), leaving later frames intact.
	corrupted := append([]byte(nil), data...)
	corrupted[len(magic)+frameHeader+2] ^= 0xFF
	_, _, err := Decode(corrupted)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-journal corruption: err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err %v is not a *CorruptError", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, _, err := Decode([]byte("NOTAJRNLxxxxxxx")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
	// A partial header is a torn first write, not corruption.
	st, _, err := Decode(magic[:3])
	if err != nil || !st.TornTail {
		t.Fatalf("partial magic: st=%+v err=%v", st, err)
	}
}

func TestDecodeOversizedLength(t *testing.T) {
	data := journalBytes(t, sampleEntries()[:1])
	bad := append([]byte(nil), data...)
	// Append a frame header claiming an over-cap payload, with data after.
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 1, 2, 3)
	if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", err)
	}
}

// Open must truncate a torn tail and resume appending cleanly.
func TestOpenTruncatesTornTailAndResumes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unit.journal")
	data := journalBytes(t, sampleEntries())
	// Tear the last frame: drop its final 3 bytes.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w, st, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !st.TornTail || st.Entries != 4 {
		t.Fatalf("torn reopen: torn=%v entries=%d, want true, 4", st.TornTail, st.Entries)
	}
	if st.Phase != lifecycle.PhaseObservation {
		t.Fatalf("torn reopen phase %v, want observation (last full record)", st.Phase)
	}
	w.Append(Entry{Kind: KindTransition, Time: 9, Transition: &lifecycle.Transition{
		From: lifecycle.PhaseObservation, To: lifecycle.PhaseNewOnly, Cause: lifecycle.CauseManual}})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, err := Open(path)
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	if st2.TornTail || st2.Entries != 5 || st2.Phase != lifecycle.PhaseNewOnly {
		t.Fatalf("after resume: %+v", st2)
	}
}

func TestOpenOrQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unit.journal")
	data := journalBytes(t, sampleEntries())
	corrupted := append([]byte(nil), data...)
	corrupted[len(magic)+frameHeader+2] ^= 0xFF
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	w, st, err := OpenOrQuarantine(path)
	if w == nil {
		t.Fatalf("OpenOrQuarantine returned no writer (err %v)", err)
	}
	defer w.Close()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("quarantine should report the corruption, got %v", err)
	}
	if st.Entries != 0 {
		t.Fatalf("fresh journal after quarantine replayed %d entries", st.Entries)
	}
	if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
		t.Fatalf("corrupt journal not preserved: %v", statErr)
	}
}

func TestCompactBoundsGrowth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unit.journal")
	w, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sampleEntries() {
		w.Append(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := Entry{Kind: KindSnapshot, Time: 10, Snapshot: &Snapshot{
		Phase:    lifecycle.PhaseParallel,
		Releases: []Release{{Version: "2.0", URL: "http://new/"}},
		Campaign: monitor.CampaignState{Joint: bayes.JointCounts{N: 150, BOnly: 3}},
	}}
	if err := w.Compact(snap); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Phase != lifecycle.PhaseParallel || st.Snapshot == nil ||
		st.Snapshot.Campaign.Joint.N != 150 {
		t.Fatalf("after compact: %+v", st)
	}
}

// A full queue must drop (with accounting), never block the caller.
func TestAppendOnFullQueueDropsNotBlocks(t *testing.T) {
	// A writer whose goroutine never runs: the queue only fills.
	w := &Writer{ch: make(chan wreq, 4), quit: make(chan struct{}), done: make(chan struct{})}
	e := Entry{Kind: KindTransition, Transition: &lifecycle.Transition{
		From: lifecycle.PhaseOldOnly, To: lifecycle.PhaseObservation, Cause: lifecycle.CauseManual}}
	for i := 0; i < 10; i++ {
		w.Append(e) // must return immediately even with a dead consumer
	}
	if got := w.Drops(); got != 6 {
		t.Fatalf("Drops = %d, want 6", got)
	}
}

func TestUnknownKindIsSkipped(t *testing.T) {
	entries := append(sampleEntries(), Entry{Kind: Kind("hologram"), Time: 99})
	st, _, err := Decode(journalBytes(t, entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 6 || st.Phase != lifecycle.PhaseParallel {
		t.Fatalf("unknown kind changed the fold: %+v", st)
	}
}
