// Package registry is a UDDI-style service registry: providers publish
// releases of their Web Services (name, version, endpoint, WSDL,
// confidence); consumers look services up and subscribe to upgrade
// notifications.
//
// The paper relies on the registry for three capabilities:
//
//   - discovery (Fig 1: services are "published with their respective
//     interfaces according to WSDL" and found through UDDI);
//   - confidence publication (§6.2: "the clients will be able to get this
//     information directly from the UDDI archive");
//   - upgrade notification (§7.2: consumers are told when a new release
//     of a WS appears, so the managed upgrade can start).
//
// The registry speaks XML over HTTP:
//
//	POST /publish          body: <entry>      → 200
//	GET  /find?name=N      → <entries> (all versions, newest first)
//	GET  /get?name=N&version=V → <entry>
//	POST /subscribe        body: <subscription> → 200
//
// On publication of a new version of an already-known service the
// registry synchronously notifies subscribers by POSTing the new entry to
// their callback URLs — the "callback function to consumers" variant of
// §7.2.
package registry

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Errors reported by the registry and its client.
var (
	// ErrNotFound reports an unknown service or version.
	ErrNotFound = errors.New("registry: not found")
	// ErrBadEntry reports an unpublishable entry.
	ErrBadEntry = errors.New("registry: bad entry")
)

// Entry is one published release of a Web Service.
type Entry struct {
	XMLName xml.Name `xml:"entry"`
	// Name is the service name, shared by all its releases.
	Name string `xml:"name"`
	// Version distinguishes releases (§3.2 requires distinguishability).
	Version string `xml:"version"`
	// URL is the release's SOAP endpoint.
	URL string `xml:"url"`
	// WSDL is the service description document, if published.
	WSDL string `xml:"wsdl,omitempty"`
	// Provider names the publishing organisation.
	Provider string `xml:"provider,omitempty"`
	// Confidence carries the published per-operation confidence values
	// (§6.2: confidence kept up to date in the UDDI archive).
	Confidence []OperationConfidence `xml:"confidence>operation,omitempty"`
	// Published is set by the registry.
	Published time.Time `xml:"published,omitempty"`
}

// OperationConfidence is a published confidence value for one operation.
type OperationConfidence struct {
	Name  string  `xml:"name,attr"`
	Value float64 `xml:"value,attr"`
}

// Validate checks the entry can be published.
func (e Entry) Validate() error {
	if e.Name == "" || e.Version == "" || e.URL == "" {
		return fmt.Errorf("%w: name, version and url are required (got %q %q %q)",
			ErrBadEntry, e.Name, e.Version, e.URL)
	}
	for _, c := range e.Confidence {
		if c.Value < 0 || c.Value > 1 {
			return fmt.Errorf("%w: confidence %v for %q outside [0,1]", ErrBadEntry, c.Value, c.Name)
		}
	}
	return nil
}

// Subscription asks for notification when a service gains a new version.
type Subscription struct {
	XMLName xml.Name `xml:"subscription"`
	// Service is the service name to watch.
	Service string `xml:"service"`
	// Callback is the URL that receives the new entry by POST.
	Callback string `xml:"callback"`
}

type entriesDoc struct {
	XMLName xml.Name `xml:"entries"`
	Entries []Entry  `xml:"entry"`
}

// Server is the in-memory registry. It implements http.Handler.
// Construct with NewServer.
type Server struct {
	mu       sync.RWMutex
	services map[string][]Entry        // name → releases, publication order
	subs     map[string][]Subscription // name → subscriptions
	notify   *http.Client
	now      func() time.Time
}

var _ http.Handler = (*Server)(nil)

// Option configures a Server.
type Option func(*Server)

// WithNotifyClient sets the HTTP client used for callback notification;
// the default has a 5 s timeout.
func WithNotifyClient(c *http.Client) Option {
	return func(s *Server) { s.notify = c }
}

// WithClock overrides the publication timestamp source (tests).
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// NewServer returns an empty registry.
func NewServer(opts ...Option) *Server {
	s := &Server{
		services: make(map[string][]Entry),
		subs:     make(map[string][]Subscription),
		notify:   &http.Client{Timeout: 5 * time.Second},
		now:      time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Publish registers a release. Publishing an existing (name, version)
// replaces its entry without notification; a new version of a known
// service triggers synchronous subscriber notification.
func (s *Server) Publish(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	e.Published = s.now()

	s.mu.Lock()
	existing := s.services[e.Name]
	replaced := false
	for i, old := range existing {
		if old.Version == e.Version {
			existing[i] = e
			replaced = true
			break
		}
	}
	isUpgrade := false
	if !replaced {
		isUpgrade = len(existing) > 0
		s.services[e.Name] = append(existing, e)
	}
	subs := append([]Subscription(nil), s.subs[e.Name]...)
	s.mu.Unlock()

	if isUpgrade {
		s.notifySubscribers(subs, e)
	}
	return nil
}

// notifySubscribers posts the new entry to each callback synchronously;
// a dead subscriber is skipped (the registry does not fail publication
// over it).
func (s *Server) notifySubscribers(subs []Subscription, e Entry) {
	body, err := xml.Marshal(e)
	if err != nil {
		return
	}
	for _, sub := range subs {
		req, err := http.NewRequest(http.MethodPost, sub.Callback, bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "text/xml; charset=utf-8")
		resp, err := s.notify.Do(req)
		if err != nil {
			continue
		}
		resp.Body.Close()
	}
}

// Find returns all releases of a service, newest publication first.
func (s *Server) Find(name string) ([]Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, ok := s.services[name]
	if !ok {
		return nil, fmt.Errorf("%w: service %q", ErrNotFound, name)
	}
	out := append([]Entry(nil), entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Published.After(out[j].Published) })
	return out, nil
}

// Get returns one specific release.
func (s *Server) Get(name, version string) (Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.services[name] {
		if e.Version == version {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %s/%s", ErrNotFound, name, version)
}

// Subscribe registers an upgrade-notification callback.
func (s *Server) Subscribe(sub Subscription) error {
	if sub.Service == "" || sub.Callback == "" {
		return fmt.Errorf("%w: subscription needs service and callback", ErrBadEntry)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.subs[sub.Service] {
		if existing.Callback == sub.Callback {
			return nil // idempotent
		}
	}
	s.subs[sub.Service] = append(s.subs[sub.Service], sub)
	return nil
}

// ServeHTTP implements the XML-over-HTTP API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/publish":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var e Entry
		if err := decodeXML(r.Body, &e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Publish(e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)

	case "/find":
		name := r.URL.Query().Get("name")
		entries, err := s.Find(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeXML(w, entriesDoc{Entries: entries})

	case "/get":
		q := r.URL.Query()
		e, err := s.Get(q.Get("name"), q.Get("version"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeXML(w, e)

	case "/subscribe":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var sub Subscription
		if err := decodeXML(r.Body, &sub); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Subscribe(sub); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)

	default:
		http.NotFound(w, r)
	}
}

// DecodeEntry reads one XML-encoded entry — the body of a §7.2 upgrade
// notification callback — from r.
func DecodeEntry(r io.Reader) (Entry, error) {
	var e Entry
	if err := decodeXML(r, &e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

func decodeXML(r io.Reader, v interface{}) error {
	data, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	if err := xml.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decoding XML: %w", err)
	}
	return nil
}

func writeXML(w http.ResponseWriter, v interface{}) {
	data, err := xml.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(data)
}

// ---------------------------------------------------------------------------
// Client

// Client talks to a registry server.
type Client struct {
	// Base is the registry's base URL.
	Base string
	// HTTP is the transport; nil means a 5 s-timeout client.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Publish registers a release with the registry.
func (c *Client) Publish(ctx context.Context, e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	body, err := xml.Marshal(e)
	if err != nil {
		return fmt.Errorf("registry: marshalling entry: %w", err)
	}
	return c.post(ctx, "/publish", body)
}

// Subscribe registers an upgrade-notification callback.
func (c *Client) Subscribe(ctx context.Context, service, callback string) error {
	body, err := xml.Marshal(Subscription{Service: service, Callback: callback})
	if err != nil {
		return fmt.Errorf("registry: marshalling subscription: %w", err)
	}
	return c.post(ctx, "/subscribe", body)
}

func (c *Client) post(ctx context.Context, path string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("registry: building request: %w", err)
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("registry: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("registry: POST %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// Find returns all releases of a service, newest first.
func (c *Client) Find(ctx context.Context, name string) ([]Entry, error) {
	var doc entriesDoc
	if err := c.get(ctx, "/find?name="+name, &doc); err != nil {
		return nil, err
	}
	return doc.Entries, nil
}

// Get returns one release.
func (c *Client) Get(ctx context.Context, name, version string) (Entry, error) {
	var e Entry
	if err := c.get(ctx, "/get?name="+name+"&version="+version, &e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

func (c *Client) get(ctx context.Context, path string, v interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return fmt.Errorf("registry: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("registry: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: GET %s", ErrNotFound, path)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("registry: GET %s: HTTP %d", path, resp.StatusCode)
	}
	return decodeXML(resp.Body, v)
}
