package registry

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func testEntry(version string) Entry {
	return Entry{
		Name:     "WebService1",
		Version:  version,
		URL:      "http://node1/ws" + version,
		Provider: "third-party",
		Confidence: []OperationConfidence{
			{Name: "operation1", Value: 0.97},
		},
	}
}

func TestPublishFindGet(t *testing.T) {
	now := time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)
	s := NewServer(WithClock(func() time.Time {
		now = now.Add(time.Minute)
		return now
	}))
	if err := s.Publish(testEntry("1.0")); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(testEntry("1.1")); err != nil {
		t.Fatal(err)
	}
	entries, err := s.Find("WebService1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("found %d entries", len(entries))
	}
	// Newest first.
	if entries[0].Version != "1.1" || entries[1].Version != "1.0" {
		t.Fatalf("order = %s, %s", entries[0].Version, entries[1].Version)
	}
	e, err := s.Get("WebService1", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if e.URL != "http://node1/ws1.0" || e.Confidence[0].Value != 0.97 {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := s.Get("WebService1", "9.9"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version: %v", err)
	}
	if _, err := s.Find("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing service: %v", err)
	}
}

func TestPublishValidation(t *testing.T) {
	s := NewServer()
	if err := s.Publish(Entry{}); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("empty entry: %v", err)
	}
	bad := testEntry("1.0")
	bad.Confidence = []OperationConfidence{{Name: "op", Value: 1.5}}
	if err := s.Publish(bad); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("confidence 1.5: %v", err)
	}
}

func TestRepublishSameVersionReplaces(t *testing.T) {
	s := NewServer()
	if err := s.Publish(testEntry("1.0")); err != nil {
		t.Fatal(err)
	}
	updated := testEntry("1.0")
	updated.Confidence = []OperationConfidence{{Name: "operation1", Value: 0.99}}
	if err := s.Publish(updated); err != nil {
		t.Fatal(err)
	}
	entries, err := s.Find("WebService1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("republish duplicated: %d entries", len(entries))
	}
	if entries[0].Confidence[0].Value != 0.99 {
		t.Fatal("confidence update lost")
	}
}

// §7.2: publishing a NEW version of a known service notifies subscribers.
func TestUpgradeNotification(t *testing.T) {
	var mu sync.Mutex
	var received []Entry
	cb := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var e Entry
		if err := decodeXML(r.Body, &e); err != nil {
			t.Errorf("callback decode: %v", err)
		}
		mu.Lock()
		received = append(received, e)
		mu.Unlock()
	}))
	defer cb.Close()

	s := NewServer()
	if err := s.Publish(testEntry("1.0")); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe(Subscription{Service: "WebService1", Callback: cb.URL}); err != nil {
		t.Fatal(err)
	}
	// Re-publishing the same version must NOT notify.
	if err := s.Publish(testEntry("1.0")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(received) != 0 {
		mu.Unlock()
		t.Fatal("same-version republish notified")
	}
	mu.Unlock()
	// A new version must notify with the new entry.
	if err := s.Publish(testEntry("1.1")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(received) != 1 || received[0].Version != "1.1" {
		t.Fatalf("notifications = %+v", received)
	}
}

func TestNotificationSurvivesDeadSubscriber(t *testing.T) {
	s := NewServer(WithNotifyClient(&http.Client{Timeout: 100 * time.Millisecond}))
	if err := s.Publish(testEntry("1.0")); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe(Subscription{Service: "WebService1", Callback: "http://127.0.0.1:1/cb"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(testEntry("1.1")); err != nil {
		t.Fatalf("publication failed over dead subscriber: %v", err)
	}
}

func TestSubscribeValidationAndIdempotence(t *testing.T) {
	s := NewServer()
	if err := s.Subscribe(Subscription{}); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("empty subscription: %v", err)
	}
	sub := Subscription{Service: "X", Callback: "http://cb"}
	if err := s.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.subs["X"]) != 1 {
		t.Fatalf("duplicate subscription stored: %d", len(s.subs["X"]))
	}
}

func TestHTTPAPIEndToEnd(t *testing.T) {
	ts := httptest.NewServer(NewServer())
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client()}
	ctx := context.Background()

	if err := c.Publish(ctx, testEntry("1.0")); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, testEntry("1.1")); err != nil {
		t.Fatal(err)
	}
	entries, err := c.Find(ctx, "WebService1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("found %d", len(entries))
	}
	e, err := c.Get(ctx, "WebService1", "1.1")
	if err != nil {
		t.Fatal(err)
	}
	if e.URL != "http://node1/ws1.1" {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := c.Get(ctx, "WebService1", "7.7"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version over HTTP: %v", err)
	}
	if _, err := c.Find(ctx, "Ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing service over HTTP: %v", err)
	}
	if err := c.Subscribe(ctx, "WebService1", "http://consumer/cb"); err != nil {
		t.Fatal(err)
	}
	// Invalid publishes are rejected with a client error.
	if err := c.Publish(ctx, Entry{Name: "x", Version: "1", URL: ""}); err == nil {
		t.Fatal("invalid entry accepted over HTTP")
	}
}

func TestHTTPAPIRejectsWrongMethods(t *testing.T) {
	ts := httptest.NewServer(NewServer())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/publish")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /publish = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /unknown = %d", resp.StatusCode)
	}
}

func TestWSDLDocumentRoundTrip(t *testing.T) {
	ts := httptest.NewServer(NewServer())
	defer ts.Close()
	c := &Client{Base: ts.URL}
	ctx := context.Background()
	e := testEntry("1.0")
	e.WSDL = `<definitions name="WebService1"><service/></definitions>`
	if err := c.Publish(ctx, e); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "WebService1", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	if got.WSDL != e.WSDL {
		t.Fatalf("WSDL lost in round trip: %q", got.WSDL)
	}
}

func TestConcurrentPublishAndFind(t *testing.T) {
	s := NewServer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				e := testEntry("1.0")
				if n%2 == 0 {
					e.Version = "1.1"
				}
				if err := s.Publish(e); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Find("WebService1"); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	entries, err := s.Find("WebService1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries after concurrent republishes, want 2", len(entries))
	}
}
