package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wsupgrade/internal/soap"
	"wsupgrade/internal/testutil"
)

// boot deploys a minimal healthy unit (two clean releases) for driving.
func boot(t *testing.T) *deployment {
	t.Helper()
	d, err := deploy(1, unitSpec{
		name: "svc",
		old:  releaseSpec{version: "1.0"},
		new:  releaseSpec{version: "1.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.close)
	return d
}

// TestClosedLoopAgainstFleet is the acceptance loop: drive a
// fleet-shaped deployment over real TCP, get latency percentiles and
// verdict counts back as JSON.
func TestClosedLoopAgainstFleet(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := boot(t)
	rep, err := Run(context.Background(), Options{
		URLs:        []string{d.unitURL("svc")},
		Concurrency: 3,
		Requests:    60,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" || rep.Requests != 60 {
		t.Fatalf("mode=%s requests=%d, want closed/60", rep.Mode, rep.Requests)
	}
	if rep.Verdicts[VerdictOK] != 60 {
		t.Fatalf("verdicts = %v, want 60 ok against a healthy unit", rep.Verdicts)
	}
	if rep.Winners["1.0"] != 60 {
		t.Fatalf("winners = %v: Observation phase must deliver the old release", rep.Winners)
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 || rep.LatencyMS.Max <= 0 {
		t.Fatalf("latency summary inconsistent: %+v", rep.LatencyMS)
	}
	if rep.RPS <= 0 || rep.DurationMS <= 0 {
		t.Fatalf("rates missing: rps=%v duration=%vms", rep.RPS, rep.DurationMS)
	}

	// The JSON summary is machine-readable: round-trip it.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Verdicts[VerdictOK] != 60 || back.LatencyMS.P99 != rep.LatencyMS.P99 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}

// TestOpenLoopHoldsSchedule: the pacer must issue demands at the target
// rate against a healthy fast target.
func TestOpenLoopHoldsSchedule(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := boot(t)
	rep, err := Run(context.Background(), Options{
		URLs:     []string{d.unitURL("svc")},
		OpenLoop: true,
		RPS:      200,
		Duration: 600 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.TargetRPS != 200 {
		t.Fatalf("mode=%s targetRps=%v", rep.Mode, rep.TargetRPS)
	}
	// ~120 scheduled; allow wide slack for CI noise but require the
	// schedule to have actually driven arrivals.
	if rep.Requests < 60 || rep.Requests > 150 {
		t.Fatalf("open loop issued %d demands for 200rps × 0.6s", rep.Requests)
	}
	if rep.Verdicts[VerdictOK] != rep.Requests {
		t.Fatalf("verdicts = %v", rep.Verdicts)
	}
}

// TestOpenLoopChargesQueueing: with a stalled target and 1 worker, the
// open loop must charge waiting demands their scheduled-time latency
// (coordinated-omission resistance) instead of silently not sending them.
func TestOpenLoopChargesQueueing(t *testing.T) {
	testutil.CheckGoroutines(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond) // each demand stalls the lone worker
		w.Header().Set("Content-Type", soap.ContentType)
		_, _ = w.Write(soap.EnvelopeRaw([]byte("<addResponse><sum>0</sum></addResponse>")))
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Options{
		URLs:        []string{ts.URL},
		OpenLoop:    true,
		RPS:         100,
		Duration:    400 * time.Millisecond,
		Concurrency: 1,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100rps schedule, 20 demands/s of capacity: the last completed
	// demand waited most of the run. p99 must reflect queueing, far
	// above the 50ms service time a closed loop would report.
	if rep.LatencyMS.Max < 150 {
		t.Fatalf("max latency %.1fms: queueing delay not charged (CO-resistant measurement broken)", rep.LatencyMS.Max)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []Options{
		{},                           // no URLs
		{URLs: []string{"http://x"}}, // closed loop without a stop condition
		{URLs: []string{"http://x"}, OpenLoop: true, Duration: time.Second}, // no RPS
		{URLs: []string{"http://x"}, OpenLoop: true, RPS: 10},               // no duration
		{URLs: []string{"http://x"}, Requests: 1, Operation: "subtract"},    // unknown op
	}
	for i, opts := range cases {
		if _, err := Run(context.Background(), opts); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("case %d: err = %v, want ErrBadOptions", i, err)
		}
	}
}

// TestVerdictClassification exercises post()'s outcome taxonomy against
// handcrafted endpoints.
func TestVerdictClassification(t *testing.T) {
	testutil.CheckGoroutines(t)
	client := &http.Client{}
	defer client.CloseIdleConnections()
	envelope := soap.EnvelopeRaw([]byte("<addRequest><a>1</a><b>2</b></addRequest>"))
	checkSum3 := func(body []byte) bool {
		parsed, err := soap.Parse(body)
		if err != nil || parsed.Fault != nil {
			return false
		}
		return bytes.Contains(body, []byte("<sum>3</sum>"))
	}
	serve := func(status int, winner string, body []byte) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if winner != "" {
				w.Header().Set("X-Wsupgrade-Winner", winner)
			}
			w.Header().Set("Content-Type", soap.ContentType)
			w.WriteHeader(status)
			_, _ = w.Write(body)
		}))
	}

	okSrv := serve(http.StatusOK, "1.0", soap.EnvelopeRaw([]byte("<addResponse><sum>3</sum></addResponse>")))
	defer okSrv.Close()
	wrongSrv := serve(http.StatusOK, "1.1", soap.EnvelopeRaw([]byte("<addResponse><sum>4</sum></addResponse>")))
	defer wrongSrv.Close()
	faultBody := soap.FaultEnvelope(soap.ServerFault("boom"))
	faultSrv := serve(http.StatusInternalServerError, "", faultBody)
	defer faultSrv.Close()
	rejectSrv := serve(http.StatusNotFound, "", []byte("nope"))
	defer rejectSrv.Close()

	ctx := context.Background()
	if v, w := post(ctx, client, okSrv.URL, soap.ContentType, envelope, checkSum3); v != VerdictOK || w != "1.0" {
		t.Fatalf("ok endpoint: verdict=%s winner=%s", v, w)
	}
	if v, w := post(ctx, client, wrongSrv.URL, soap.ContentType, envelope, checkSum3); v != VerdictWrong || w != "1.1" {
		t.Fatalf("wrong endpoint: verdict=%s winner=%s", v, w)
	}
	if v, _ := post(ctx, client, faultSrv.URL, soap.ContentType, envelope, checkSum3); v != VerdictFault {
		t.Fatalf("fault endpoint: verdict=%s", v)
	}
	if v, _ := post(ctx, client, rejectSrv.URL, soap.ContentType, envelope, checkSum3); v != VerdictRejected {
		t.Fatalf("404 endpoint: verdict=%s", v)
	}

	// Timeout: a hung endpoint with a short per-request deadline. Drain
	// the request body first — the server only notices an abandoned
	// connection (and cancels the request context) once it is reading.
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer hung.Close()
	shortCtx, cancel := context.WithTimeout(ctx, 80*time.Millisecond)
	defer cancel()
	if v, _ := post(shortCtx, client, hung.URL, soap.ContentType, envelope, checkSum3); v != VerdictTimeout {
		t.Fatalf("hung endpoint: verdict=%s, want timeout", v)
	}

	// Transport: nothing listening.
	deadSrv := serve(http.StatusOK, "", nil)
	deadURL := deadSrv.URL
	deadSrv.Close()
	if v, _ := post(ctx, client, deadURL, soap.ContentType, envelope, checkSum3); v != VerdictTransport {
		t.Fatalf("dead endpoint: verdict=%s, want transport", v)
	}
}

// TestOperation1Load: the secondary demo operation is client-checkable
// too.
func TestOperation1Load(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := boot(t)
	rep, err := Run(context.Background(), Options{
		URLs:      []string{d.unitURL("svc")},
		Operation: "operation1",
		Requests:  20,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdicts[VerdictOK] != 20 {
		t.Fatalf("operation1 verdicts = %v", rep.Verdicts)
	}
}
