package loadgen

// The scenario runner pairs the load generator with the §5.1 fault
// injector: each scenario boots a real fleet-shaped deployment over TCP
// (releases behind faulty.Server listeners, a fleet router in front),
// drives it with Run, and checks the paper's dependability claims as
// machine-verdicted assertions. Scenarios are what CI runs: a failing
// claim is a failing exit code, and the full evidence ships as JSON.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/core"
	"wsupgrade/internal/faulty"
	"wsupgrade/internal/fleet"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/protocol/jsoncodec"
	"wsupgrade/internal/service"
	"wsupgrade/internal/stats"
)

// ErrScenarioFailed reports a scenario whose assertions did not hold.
var ErrScenarioFailed = fmt.Errorf("loadgen: scenario failed")

// ErrUnknownScenario reports a scenario name outside Scenarios().
var ErrUnknownScenario = fmt.Errorf("loadgen: unknown scenario")

// ScenarioOptions parameterizes a scenario run.
type ScenarioOptions struct {
	// Requests scales the demand-count-driven scenarios (default 400).
	Requests int
	// Duration bounds the time-driven scenarios (soak; default 8s).
	Duration time.Duration
	// Concurrency is the consumer-side worker count (default 4).
	Concurrency int
	// Seed fixes the injection and request streams (default 1).
	Seed uint64
	// Log receives progress lines (nil discards them).
	Log io.Writer
}

func (o *ScenarioOptions) normalize() {
	if o.Requests <= 0 {
		o.Requests = 400
	}
	if o.Duration <= 0 {
		o.Duration = 8 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o ScenarioOptions) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// UnitReport snapshots one upgrade unit's management view after load.
type UnitReport struct {
	Unit  string `json:"unit"`
	Phase string `json:"phase"`
	// OldConfidence / NewConfidence are the white-box P(pfd ≤ T).
	OldConfidence float64 `json:"oldConfidence"`
	NewConfidence float64 `json:"newConfidence"`
	// OldAvailConfidence / NewAvailConfidence are the black-box
	// P(p_no-response ≤ T) availability confidences (§6.1).
	OldAvailConfidence float64 `json:"oldAvailConfidence"`
	NewAvailConfidence float64 `json:"newAvailConfidence"`
	JointDemands       int     `json:"jointDemands"`
	NewDemands         int     `json:"newDemands"`
	NewResponses       int     `json:"newResponses"`
	NewJudgedFailures  int     `json:"newJudgedFailures"`
}

// SoakStats bounds the soak scenario's resource envelope.
type SoakStats struct {
	GOMAXPROCS       int    `json:"gomaxprocs"`
	GoroutinesBefore int    `json:"goroutinesBefore"`
	GoroutinesPeak   int    `json:"goroutinesPeak"`
	GoroutinesAfter  int    `json:"goroutinesAfter"`
	HeapBeforeKB     uint64 `json:"heapBeforeKb"`
	HeapAfterKB      uint64 `json:"heapAfterKb"`
	RSSBeforeKB      int    `json:"rssBeforeKb"`
	RSSAfterKB       int    `json:"rssAfterKb"`
}

// ScenarioResult is one scenario's full evidence, JSON-serializable.
type ScenarioResult struct {
	Scenario string   `json:"scenario"`
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
	// Load is the (merged) consumer-side load report.
	Load *Report `json:"load,omitempty"`
	// Batches carries per-phase load reports for staged scenarios.
	Batches []Report `json:"batches,omitempty"`
	// Units is the management view per upgrade unit.
	Units []UnitReport `json:"units,omitempty"`
	// Injected counts demands by injected fault mode, per unit.
	Injected map[string]map[string]int `json:"injected,omitempty"`
	// Soak is the resource envelope (soak scenario only).
	Soak *SoakStats `json:"soak,omitempty"`
	// Saturation is the open-loop ramp's knee (saturation scenario only).
	Saturation *SaturationReport `json:"saturation,omitempty"`
}

// WriteJSON writes the result as indented JSON.
func (r ScenarioResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// check appends a failure unless cond holds.
func (r *ScenarioResult) check(cond bool, format string, args ...interface{}) {
	if !cond {
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}
}

type scenarioFunc func(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error)

var scenarios = map[string]scenarioFunc{
	"corrupt-never-wins":      corruptNeverWins,
	"corrupt-never-wins-json": corruptNeverWinsJSON,
	"omission-convergence":    omissionConvergence,
	"crash-restart":           crashRestart,
	"crash-recovery":          crashRecovery,
	"mixed-fault":             mixedFault,
	"saturation":              saturation,
	"soak":                    soak,
}

// Scenarios lists the runnable scenario names, sorted.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunScenario executes one named scenario. The error is ErrScenarioFailed
// when assertions failed, something else when the run itself broke.
func RunScenario(ctx context.Context, name string, opts ScenarioOptions) (ScenarioResult, error) {
	fn, ok := scenarios[name]
	if !ok {
		return ScenarioResult{}, fmt.Errorf("%w: %q (have %s)", ErrUnknownScenario, name, strings.Join(Scenarios(), ", "))
	}
	opts.normalize()
	res, err := fn(ctx, opts)
	res.Scenario = name
	res.Pass = err == nil && len(res.Failures) == 0
	if err == nil && !res.Pass {
		err = fmt.Errorf("%w: %s: %s", ErrScenarioFailed, name, strings.Join(res.Failures, "; "))
	}
	return res, err
}

// ---------------------------------------------------------------------------
// Deployment scaffolding

// releaseSpec is one hosted release: a demo service at a version, with
// an optional §5.1 fault injector in front.
type releaseSpec struct {
	version string
	faults  []faulty.Fault
}

// unitSpec is one upgrade unit: releases plus engine knobs.
type unitSpec struct {
	name string
	// protocol selects the unit's gateway codec: "" or "soap" for the
	// SOAP mediator, "json" for the REST/JSON gateway over the same
	// dispatch core.
	protocol string
	old      releaseSpec
	new      releaseSpec
	timeout  time.Duration
	policy   *core.PolicyConfig
}

// hostedUnit is a booted unitSpec with handles for chaos control.
type hostedUnit struct {
	name     string
	oldSrv   *faulty.Server
	newSrv   *faulty.Server
	injector *faulty.Injector // fronting the new release; nil when faultless
}

// deployment is a fleet-shaped system under test on real TCP.
type deployment struct {
	fleet     *fleet.Fleet
	units     map[string]*hostedUnit
	baseURL   string
	closers   []func()
	closeOnce sync.Once
}

// close tears the deployment down in reverse boot order; idempotent so
// scenarios can close eagerly and still defer it.
func (d *deployment) close() {
	d.closeOnce.Do(func() {
		for i := len(d.closers) - 1; i >= 0; i-- {
			d.closers[i]()
		}
	})
}

// unitURL returns the consumer-facing endpoint of a unit.
func (d *deployment) unitURL(name string) string {
	return d.baseURL + "/" + name + "/"
}

// engine returns a unit's management interface.
func (d *deployment) engine(name string) *core.Engine {
	u, err := d.fleet.Unit(name)
	if err != nil {
		panic(err) // deployment built the unit; absence is a bug
	}
	return u.Engine()
}

// whiteBox is the scenario-scale inference grid: coarser than the
// examples' for speed, still plenty for ±0.05 confidence assertions.
func whiteBox() *bayes.WhiteBoxConfig {
	prior := stats.ScaledBeta{Alpha: 1, Beta: 3, Upper: 0.3}
	return &bayes.WhiteBoxConfig{
		PriorA: prior, PriorB: prior,
		GridA: 40, GridB: 40, GridC: 10, GridAB: 48,
	}
}

// deploy boots the units: each release on its own faulty.Server, the
// fleet router on one listener, everything torn down by close().
func deploy(seed uint64, specs ...unitSpec) (*deployment, error) {
	d := &deployment{units: make(map[string]*hostedUnit)}
	ok := false
	defer func() {
		if !ok {
			d.close()
		}
	}()

	var unitConfigs []fleet.UnitConfig
	for i, spec := range specs {
		hu := &hostedUnit{name: spec.name}
		endpoints := make([]core.Endpoint, 0, 2)
		for j, rel := range []releaseSpec{spec.old, spec.new} {
			var handler http.Handler
			if spec.protocol == "json" {
				release, err := service.NewJSON(rel.version, service.DemoJSONBehaviours(), service.FaultPlan{})
				if err != nil {
					return nil, err
				}
				handler = release.Handler()
			} else {
				release, err := service.New(service.DemoContract(rel.version), service.DemoBehaviours(), service.FaultPlan{})
				if err != nil {
					return nil, err
				}
				handler = release.Handler()
			}
			if len(rel.faults) > 0 {
				inj := faulty.Wrap(handler, seed+uint64(i*2+j), rel.faults...)
				handler = inj
				if j == 1 {
					hu.injector = inj
				}
			}
			srv := faulty.NewServer(handler)
			if err := srv.Start(); err != nil {
				return nil, err
			}
			d.closers = append(d.closers, srv.Close)
			if j == 0 {
				hu.oldSrv = srv
			} else {
				hu.newSrv = srv
			}
			endpoints = append(endpoints, core.Endpoint{Version: rel.version, URL: srv.URL()})
		}
		d.units[spec.name] = hu
		ref := oracle.Reference{Release: spec.old.version}
		if spec.protocol == "json" {
			ref.Codec = jsoncodec.Default
		}
		unitConfigs = append(unitConfigs, fleet.UnitConfig{
			Name:     spec.name,
			Protocol: spec.protocol,
			Engine: core.Config{
				Releases:         endpoints,
				Timeout:          spec.timeout,
				InitialPhase:     core.PhaseObservation,
				Oracle:           ref,
				Inference:        whiteBox(),
				Policy:           spec.policy,
				ConfidenceTarget: 0.05,
				Seed:             seed,
			},
		})
	}

	fl, err := fleet.New(fleet.Config{Units: unitConfigs})
	if err != nil {
		return nil, err
	}
	d.fleet = fl
	d.closers = append(d.closers, func() { _ = fl.Close() })

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: fl, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	d.closers = append(d.closers, func() {
		// Drain in-flight handlers before the fleet behind them closes:
		// Close() cuts connections but does not wait for handlers, so a
		// dispatch could still be running when fleet.Close tears the
		// engines down. Engine timeouts bound every handler, so Shutdown
		// converges; Close is the hung-handler fallback.
		sdCtx, sdCancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer sdCancel()
		if httpSrv.Shutdown(sdCtx) != nil {
			_ = httpSrv.Close()
		}
	})
	d.baseURL = "http://" + ln.Addr().String()
	ok = true
	return d, nil
}

// unitReport assembles the management view of one unit.
func unitReport(d *deployment, name, oldVersion, newVersion string) UnitReport {
	eng := d.engine(name)
	rep := UnitReport{Unit: name, Phase: eng.Phase().String()}
	if conf, err := eng.Confidence(""); err == nil {
		rep.OldConfidence = conf.Old
		rep.NewConfidence = conf.New
	}
	if c, err := eng.AvailabilityConfidence(oldVersion, 0.05); err == nil {
		rep.OldAvailConfidence = c
	}
	if c, err := eng.AvailabilityConfidence(newVersion, 0.05); err == nil {
		rep.NewAvailConfidence = c
	}
	rep.JointDemands = eng.Monitor().Joint().N
	if s, err := eng.Monitor().Stats(newVersion); err == nil {
		rep.NewDemands = s.Demands
		rep.NewResponses = s.Responses
		rep.NewJudgedFailures = s.JudgedFailures
	}
	return rep
}

// injected collects the injector's per-mode counts for the result.
func injected(d *deployment) map[string]map[string]int {
	out := make(map[string]map[string]int)
	for name, hu := range d.units {
		if hu.injector == nil {
			continue
		}
		modes := make(map[string]int)
		for mode, n := range hu.injector.Counts() {
			modes[mode.String()] = n
		}
		out[name] = modes
	}
	return out
}

// ---------------------------------------------------------------------------
// Scenarios

// corruptNeverWins: the new release returns well-formed but WRONG
// responses on every demand (§5.1's non-evident failure, at rate 1).
// The claim under test is the §4.1 upgrade-phase contract: during
// Observation the old release's response is always the one delivered,
// the oracle charges every corrupt response to the new release, and the
// automatic switch policy never promotes it — so consumers never see a
// wrong answer even though every single new-release response is wrong.
func corruptNeverWins(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error) {
	return corruptNeverWinsOn(ctx, opts, "soap")
}

// corruptNeverWinsJSON is the same claim driven end to end through the
// REST/JSON gateway: JSON releases, JSON-aware corruption, JSON
// demands — the adjudication guarantees must be protocol-independent.
func corruptNeverWinsJSON(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error) {
	return corruptNeverWinsOn(ctx, opts, "json")
}

func corruptNeverWinsOn(ctx context.Context, opts ScenarioOptions, protocol string) (ScenarioResult, error) {
	var res ScenarioResult
	const oldV, newV = "1.0", "1.1"
	d, err := deploy(opts.Seed, unitSpec{
		name:     "svc",
		protocol: protocol,
		old:      releaseSpec{version: oldV},
		new:      releaseSpec{version: newV, faults: []faulty.Fault{{Mode: faulty.Corrupt, Rate: 1}}},
		policy: &core.PolicyConfig{
			Criterion:  bayes.Criterion3{Confidence: 0.95},
			CheckEvery: 50,
			MinDemands: 100,
		},
	})
	if err != nil {
		return res, err
	}
	defer d.close()

	opts.logf("corrupt-never-wins (%s): driving %d demands at %s", protocol, opts.Requests, d.unitURL("svc"))
	load, err := Run(ctx, Options{
		URLs:        []string{d.unitURL("svc")},
		Protocol:    protocol,
		Concurrency: opts.Concurrency,
		Requests:    opts.Requests,
		Seed:        opts.Seed,
	})
	if err != nil {
		return res, err
	}
	res.Load = &load
	unit := unitReport(d, "svc", oldV, newV)
	res.Units = []UnitReport{unit}
	res.Injected = injected(d)

	res.check(load.Requests == opts.Requests, "drove %d demands, want %d", load.Requests, opts.Requests)
	res.check(load.Verdicts[VerdictOK] == load.Requests,
		"verdicts %v: every demand must deliver the correct (old) response", load.Verdicts)
	res.check(load.Verdicts[VerdictWrong] == 0,
		"%d corrupt responses reached a consumer", load.Verdicts[VerdictWrong])
	res.check(load.Winners[newV] == 0,
		"corrupt release %s won adjudication %d times", newV, load.Winners[newV])
	res.check(load.Winners[oldV] == load.Requests,
		"old release delivered %d of %d", load.Winners[oldV], load.Requests)
	res.check(unit.Phase == core.PhaseObservation.String(),
		"phase = %s: the switch policy promoted a 100%%-corrupt release", unit.Phase)
	res.check(unit.NewJudgedFailures >= unit.NewDemands*9/10,
		"oracle judged only %d of %d corrupt responses as failures", unit.NewJudgedFailures, unit.NewDemands)
	res.check(unit.NewConfidence < 0.5,
		"confidence in the corrupt release = %.3f", unit.NewConfidence)
	return res, nil
}

// omissionConvergence: the new release omits 10% of its responses
// (hangs past the engine timeout). Consumers — served the old release
// during Observation — must not notice, while the monitoring subsystem
// must converge: high confidence in the old release on both the
// white-box (correctness) and availability axes, visibly depressed
// availability confidence in the omitting new release.
func omissionConvergence(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error) {
	var res ScenarioResult
	const oldV, newV = "1.0", "1.1"
	d, err := deploy(opts.Seed, unitSpec{
		name:    "svc",
		old:     releaseSpec{version: oldV},
		new:     releaseSpec{version: newV, faults: []faulty.Fault{{Mode: faulty.Omission, Rate: 0.1}}},
		timeout: 300 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	defer d.close()

	opts.logf("omission-convergence: driving %d demands at %s", opts.Requests, d.unitURL("svc"))
	load, err := Run(ctx, Options{
		URLs:        []string{d.unitURL("svc")},
		Concurrency: opts.Concurrency,
		Requests:    opts.Requests,
		Seed:        opts.Seed,
	})
	if err != nil {
		return res, err
	}
	res.Load = &load
	unit := unitReport(d, "svc", oldV, newV)
	res.Units = []UnitReport{unit}
	res.Injected = injected(d)

	omitted := res.Injected["svc"][faulty.Omission.String()]
	res.check(load.Verdicts[VerdictOK] == load.Requests,
		"verdicts %v: omission on the observed release leaked to consumers", load.Verdicts)
	res.check(omitted > opts.Requests/20 && omitted < opts.Requests/4,
		"injected %d omissions over %d demands — outside the plausible 10%% band", omitted, opts.Requests)
	res.check(unit.NewResponses < unit.NewDemands,
		"monitor saw %d/%d responses from the omitting release — omissions unobserved", unit.NewResponses, unit.NewDemands)
	res.check(unit.JointDemands >= opts.Requests*6/10,
		"white-box inference got %d joint observations of %d demands", unit.JointDemands, opts.Requests)
	res.check(unit.OldConfidence >= 0.9,
		"white-box confidence in the old release = %.3f after %d joint demands", unit.OldConfidence, unit.JointDemands)
	res.check(unit.OldAvailConfidence >= 0.9,
		"availability confidence in the old release = %.3f", unit.OldAvailConfidence)
	res.check(unit.NewAvailConfidence <= 0.5,
		"availability confidence in the 10%%-omitting release = %.3f — should be depressed", unit.NewAvailConfidence)
	res.check(unit.Phase == core.PhaseObservation.String(), "phase drifted to %s", unit.Phase)
	return res, nil
}

// crashRestart: the new release's listener crashes mid-campaign and
// restarts at the same address. Consumers must be shielded throughout
// (the old release delivers), and the monitor must show the new release
// going dark and then recovering — §5.1's crash failure end to end.
func crashRestart(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error) {
	var res ScenarioResult
	const oldV, newV = "1.0", "1.1"
	d, err := deploy(opts.Seed, unitSpec{
		name:    "svc",
		old:     releaseSpec{version: oldV},
		new:     releaseSpec{version: newV},
		timeout: 500 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	defer d.close()

	batch := opts.Requests / 3
	if batch < 30 {
		batch = 30
	}
	run := func(stage string) (Report, error) {
		opts.logf("crash-restart: %s — %d demands", stage, batch)
		return Run(ctx, Options{
			URLs:        []string{d.unitURL("svc")},
			Concurrency: opts.Concurrency,
			Requests:    batch,
			Seed:        opts.Seed,
		})
	}
	eng := d.engine("svc")
	newResponses := func() int {
		s, err := eng.Monitor().Stats(newV)
		if err != nil {
			return -1
		}
		return s.Responses
	}

	before, err := run("baseline")
	if err != nil {
		return res, err
	}
	afterBaseline := newResponses()

	d.units["svc"].newSrv.Stop()
	during, err := run("new release crashed")
	if err != nil {
		return res, err
	}
	afterCrash := newResponses()

	if err := d.units["svc"].newSrv.Start(); err != nil {
		return res, fmt.Errorf("restarting new release: %w", err)
	}
	after, err := run("new release restarted")
	if err != nil {
		return res, err
	}
	afterRestart := newResponses()

	res.Batches = []Report{before, during, after}
	unit := unitReport(d, "svc", oldV, newV)
	res.Units = []UnitReport{unit}

	for i, rep := range res.Batches {
		stage := []string{"baseline", "crash", "restart"}[i]
		res.check(rep.Verdicts[VerdictOK] == rep.Requests,
			"%s batch verdicts %v: the crash leaked to consumers", stage, rep.Verdicts)
		res.check(rep.Winners[newV] == 0, "%s batch: crashed-observee %s delivered %d responses", stage, newV, rep.Winners[newV])
	}
	res.check(afterBaseline > 0, "monitor saw no new-release responses before the crash")
	res.check(afterCrash-afterBaseline <= batch/10,
		"monitor counted %d new-release responses while its listener was down", afterCrash-afterBaseline)
	res.check(afterRestart-afterCrash >= batch*8/10,
		"new release recovered only %d responses of %d post-restart demands", afterRestart-afterCrash, batch)
	return res, nil
}

// soak: a two-unit fleet under sustained mixed load with mild background
// chaos (latency spikes and rare corrupt responses on the observed
// releases). The claims are resource claims: goroutine count returns to
// its pre-load baseline, the heap and RSS envelopes stay bounded — the
// system can run indefinitely. CI runs this under -race at several
// GOMAXPROCS values.
func soak(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error) {
	var res ScenarioResult
	mild := []faulty.Fault{
		{Mode: faulty.LatencySpike, Rate: 0.05, Latency: 20 * time.Millisecond},
		{Mode: faulty.Corrupt, Rate: 0.02},
	}
	d, err := deploy(opts.Seed,
		unitSpec{name: "flights", old: releaseSpec{version: "1.0"}, new: releaseSpec{version: "1.1", faults: mild}},
		unitSpec{name: "hotels", old: releaseSpec{version: "2.0"}, new: releaseSpec{version: "2.1", faults: mild}},
	)
	if err != nil {
		return res, err
	}
	defer d.close()

	soakStats := &SoakStats{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	res.Soak = soakStats
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	soakStats.HeapBeforeKB = ms.HeapAlloc >> 10
	soakStats.RSSBeforeKB = readRSSKB()
	soakStats.GoroutinesBefore = runtime.NumGoroutine()

	// Sample the goroutine high-water mark while the load runs.
	sampleDone := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-sampleDone:
				return
			case <-ticker.C:
				if n := runtime.NumGoroutine(); n > soakStats.GoroutinesPeak {
					soakStats.GoroutinesPeak = n
				}
			}
		}
	}()

	conc := opts.Concurrency
	if conc < 8 {
		conc = 8
	}
	opts.logf("soak: %v of closed-loop load, %d workers, 2 units, GOMAXPROCS=%d",
		opts.Duration, conc, soakStats.GOMAXPROCS)
	load, err := Run(ctx, Options{
		URLs:        []string{d.unitURL("flights"), d.unitURL("hotels")},
		Concurrency: conc,
		Duration:    opts.Duration,
		Seed:        opts.Seed,
	})
	close(sampleDone)
	sampleWG.Wait()
	if err != nil {
		return res, err
	}
	res.Load = &load
	res.Units = []UnitReport{
		unitReport(d, "flights", "1.0", "1.1"),
		unitReport(d, "hotels", "2.0", "2.1"),
	}
	res.Injected = injected(d)

	// Tear the system down, then require the goroutine count to settle
	// back to its pre-deployment-load baseline.
	d.close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		soakStats.GoroutinesAfter = runtime.NumGoroutine()
		if soakStats.GoroutinesAfter <= soakStats.GoroutinesBefore+4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	runtime.ReadMemStats(&ms)
	soakStats.HeapAfterKB = ms.HeapAlloc >> 10
	soakStats.RSSAfterKB = readRSSKB()

	res.check(load.Requests > 0, "soak drove no demands")
	res.check(load.Verdicts[VerdictWrong] == 0,
		"%d corrupt responses leaked to consumers", load.Verdicts[VerdictWrong])
	res.check(load.Verdicts[VerdictTransport] == 0,
		"%d transport-level failures against a healthy fleet", load.Verdicts[VerdictTransport])
	res.check(load.Verdicts[VerdictOK] >= load.Requests*99/100,
		"verdicts %v: >1%% of demands degraded", load.Verdicts)
	res.check(soakStats.GoroutinesAfter <= soakStats.GoroutinesBefore+10,
		"goroutines %d → %d: load left goroutines behind", soakStats.GoroutinesBefore, soakStats.GoroutinesAfter)
	res.check(soakStats.GoroutinesPeak <= soakStats.GoroutinesBefore+8*conc+200,
		"goroutine peak %d (baseline %d, %d workers): unbounded fan-out", soakStats.GoroutinesPeak, soakStats.GoroutinesBefore, conc)
	res.check(soakStats.HeapAfterKB <= soakStats.HeapBeforeKB+(256<<10),
		"heap %dKB → %dKB: unbounded growth", soakStats.HeapBeforeKB, soakStats.HeapAfterKB)
	if soakStats.RSSBeforeKB > 0 && soakStats.RSSAfterKB > 0 {
		res.check(soakStats.RSSAfterKB <= soakStats.RSSBeforeKB+(768<<10),
			"RSS %dKB → %dKB: unbounded growth", soakStats.RSSBeforeKB, soakStats.RSSAfterKB)
	}
	return res, nil
}

// readRSSKB reads VmRSS from /proc/self/status; 0 when unavailable.
func readRSSKB() int {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if kb, err := strconv.Atoi(fields[1]); err == nil {
				return kb
			}
		}
	}
	return 0
}
