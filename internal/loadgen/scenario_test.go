package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/testutil"
)

func TestScenarioRegistry(t *testing.T) {
	names := Scenarios()
	want := []string{"corrupt-never-wins", "corrupt-never-wins-json", "crash-recovery", "crash-restart", "mixed-fault", "omission-convergence", "saturation", "soak"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Scenarios() = %v, want %v (sorted)", names, want)
	}
	if _, err := RunScenario(context.Background(), "nope", ScenarioOptions{}); !errors.Is(err, ErrUnknownScenario) {
		t.Fatalf("unknown scenario err = %v", err)
	}
}

// TestCorruptNeverWins is the flagship acceptance claim: a release
// whose every response is corrupt (well-formed, wrong) must never win
// adjudication, never reach a consumer, and never be switched to.
func TestCorruptNeverWins(t *testing.T) {
	testutil.CheckGoroutines(t)
	res, err := RunScenario(context.Background(), "corrupt-never-wins",
		ScenarioOptions{Requests: 150, Concurrency: 3, Seed: 7})
	if err != nil {
		t.Fatalf("scenario failed: %v\nresult: %+v", err, res)
	}
	if !res.Pass {
		t.Fatalf("pass=false without error: %+v", res)
	}
	if res.Load.Verdicts[VerdictOK] != 150 || res.Load.Winners["1.1"] != 0 {
		t.Fatalf("load evidence inconsistent: %+v", res.Load)
	}
	if got := res.Injected["svc"]["corrupt"]; got < 140 {
		t.Fatalf("injector corrupted %d of 150 demands at rate 1", got)
	}
	if res.Units[0].Phase != "observation" {
		t.Fatalf("phase = %s", res.Units[0].Phase)
	}

	// The result is the CI artifact: JSON round-trip with evidence intact.
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ScenarioResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !back.Pass || back.Scenario != "corrupt-never-wins" || back.Units[0].NewJudgedFailures == 0 {
		t.Fatalf("JSON round-trip lost evidence: %+v", back)
	}
}

// TestCorruptNeverWinsJSON: the flagship claim holds end to end through
// the REST/JSON gateway — JSON releases, JSON-aware corruption, JSON
// demands, same verdict.
func TestCorruptNeverWinsJSON(t *testing.T) {
	testutil.CheckGoroutines(t)
	res, err := RunScenario(context.Background(), "corrupt-never-wins-json",
		ScenarioOptions{Requests: 150, Concurrency: 3, Seed: 7})
	if err != nil {
		t.Fatalf("scenario failed: %v\nresult: %+v", err, res)
	}
	if res.Load.Protocol != "json" {
		t.Fatalf("load protocol = %q", res.Load.Protocol)
	}
	if res.Load.Verdicts[VerdictOK] != 150 || res.Load.Winners["1.1"] != 0 {
		t.Fatalf("load evidence inconsistent: %+v", res.Load)
	}
	if got := res.Injected["svc"]["corrupt"]; got < 140 {
		t.Fatalf("injector corrupted %d of 150 demands at rate 1", got)
	}
	if res.Units[0].Phase != "observation" {
		t.Fatalf("phase = %s", res.Units[0].Phase)
	}
}

// TestCorruptNeverWinsIsSeeded: same seed → identical injection counts.
func TestCorruptNeverWinsIsSeeded(t *testing.T) {
	testutil.CheckGoroutines(t)
	opts := ScenarioOptions{Requests: 60, Concurrency: 2, Seed: 11}
	a, err := RunScenario(context.Background(), "corrupt-never-wins", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(context.Background(), "corrupt-never-wins", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected["svc"]["corrupt"] != b.Injected["svc"]["corrupt"] {
		t.Fatalf("seeded runs diverged: %v vs %v", a.Injected, b.Injected)
	}
}

func TestOmissionConvergence(t *testing.T) {
	testutil.CheckGoroutines(t)
	res, err := RunScenario(context.Background(), "omission-convergence",
		ScenarioOptions{Requests: 200, Concurrency: 4, Seed: 5})
	if err != nil {
		t.Fatalf("scenario failed: %v\nunits: %+v\ninjected: %v", err, res.Units, res.Injected)
	}
	u := res.Units[0]
	if u.OldAvailConfidence < 0.9 || u.NewAvailConfidence > 0.5 {
		t.Fatalf("availability confidences did not separate: old=%.3f new=%.3f", u.OldAvailConfidence, u.NewAvailConfidence)
	}
	if res.Load.Verdicts[VerdictOK] != 200 {
		t.Fatalf("consumer saw omissions: %v", res.Load.Verdicts)
	}
}

func TestCrashRestart(t *testing.T) {
	testutil.CheckGoroutines(t)
	res, err := RunScenario(context.Background(), "crash-restart",
		ScenarioOptions{Requests: 90, Concurrency: 3, Seed: 9})
	if err != nil {
		t.Fatalf("scenario failed: %v\nbatches: %+v\nunits: %+v", err, res.Batches, res.Units)
	}
	if len(res.Batches) != 3 {
		t.Fatalf("want 3 batch reports, got %d", len(res.Batches))
	}
	for i, b := range res.Batches {
		if b.Verdicts[VerdictOK] != b.Requests {
			t.Fatalf("batch %d verdicts %v", i, b.Verdicts)
		}
	}
}

func TestSoakScenarioShort(t *testing.T) {
	testutil.CheckGoroutines(t)
	res, err := RunScenario(context.Background(), "soak",
		ScenarioOptions{Duration: 1500 * time.Millisecond, Concurrency: 4, Seed: 3})
	if err != nil {
		t.Fatalf("soak failed: %v\nsoak: %+v\nload: %+v", err, res.Soak, res.Load)
	}
	s := res.Soak
	if s.GoroutinesBefore <= 0 || s.GoroutinesPeak < s.GoroutinesBefore || s.HeapBeforeKB == 0 {
		t.Fatalf("soak stats not captured: %+v", s)
	}
	if s.GoroutinesAfter > s.GoroutinesBefore+10 {
		t.Fatalf("goroutines %d → %d", s.GoroutinesBefore, s.GoroutinesAfter)
	}
	if len(res.Units) != 2 {
		t.Fatalf("want 2 unit reports, got %d", len(res.Units))
	}
	if res.Load.Requests == 0 || res.Load.Verdicts[VerdictWrong] != 0 {
		t.Fatalf("soak load: %+v", res.Load)
	}
}
