package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// ScalingOptions configures a GOMAXPROCS scaling sweep.
type ScalingOptions struct {
	// Concurrency is the closed-loop worker count used at every point; it
	// stays fixed so the only variable across points is the core budget.
	// Zero means 16.
	Concurrency int
	// PerPoint is how long each GOMAXPROCS point runs. Zero means 2s.
	PerPoint time.Duration
	// Seed feeds the deployed unit's fault injection (none) and the
	// drivers' request parameters.
	Seed uint64
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// ScalingPoint is one GOMAXPROCS setting's measurement.
type ScalingPoint struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Requests   int     `json:"requests"`
	RPS        float64 `json:"rps"`
	P50MS      float64 `json:"p50Ms"`
	P99MS      float64 `json:"p99Ms"`
}

// ScalingReport is the committed scaling-curve artifact: throughput and
// tail latency of the mediation fast path as the core budget grows
// 1, 2, 4, … up to the machine. The curve is the zero-alloc work's
// second deliverable — a fast path that scales with cores rather than
// serializing on the allocator or a shared lock.
type ScalingReport struct {
	CPUs        int            `json:"cpus"`
	Concurrency int            `json:"concurrency"`
	PerPointMS  float64        `json:"perPointMs"`
	Points      []ScalingPoint `json:"points"`
}

// WriteJSON writes the report as indented JSON.
func (r ScalingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunScaling deploys one faultless two-release unit over TCP, then
// drives it closed-loop at a fixed worker count while stepping
// GOMAXPROCS through 1, 2, 4, … NumCPU. The deployment is shared across
// points so pools are warm and the curve measures scheduling, not
// warm-up. GOMAXPROCS is restored before returning.
func RunScaling(ctx context.Context, opts ScalingOptions) (ScalingReport, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.PerPoint <= 0 {
		opts.PerPoint = 2 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	logf := func(format string, args ...interface{}) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	rep := ScalingReport{
		CPUs:        runtime.NumCPU(),
		Concurrency: opts.Concurrency,
		PerPointMS:  float64(opts.PerPoint.Milliseconds()),
	}

	d, err := deploy(opts.Seed, unitSpec{
		name: "svc",
		old:  releaseSpec{version: "1.0"},
		new:  releaseSpec{version: "1.1"},
	})
	if err != nil {
		return rep, err
	}
	defer d.close()

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	// 1, 2, 4, … then the full machine, so the curve's last point is the
	// default configuration even when NumCPU is not a power of two.
	var levels []int
	for n := 1; n < rep.CPUs; n *= 2 {
		levels = append(levels, n)
	}
	levels = append(levels, rep.CPUs)

	for _, n := range levels {
		runtime.GOMAXPROCS(n)
		logf("scaling: GOMAXPROCS=%d, %d workers, %v", n, opts.Concurrency, opts.PerPoint)
		load, err := Run(ctx, Options{
			URLs:        []string{d.unitURL("svc")},
			Concurrency: opts.Concurrency,
			Duration:    opts.PerPoint,
			Timeout:     5 * time.Second,
			Seed:        opts.Seed,
		})
		if err != nil {
			return rep, err
		}
		rep.Points = append(rep.Points, ScalingPoint{
			GOMAXPROCS: n,
			Requests:   load.Requests,
			RPS:        load.RPS,
			P50MS:      load.LatencyMS.P50,
			P99MS:      load.LatencyMS.P99,
		})
		logf("scaling: GOMAXPROCS=%d → %.0f rps, p50 %.2fms, p99 %.2fms",
			n, load.RPS, load.LatencyMS.P50, load.LatencyMS.P99)
		if ctx.Err() != nil {
			break
		}
	}
	return rep, nil
}
