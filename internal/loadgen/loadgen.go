// Package loadgen drives a deployed mediator (an engine or a fleet
// unit) over real TCP and reports what the microbenchmarks cannot:
// latency percentiles under concurrency, error and verdict breakdowns,
// and winner distributions, as one machine-readable JSON summary.
//
// Two drive modes mirror the standard load-testing dichotomy:
//
//   - closed loop: N workers each run request → response → next
//     request. Throughput is an outcome; back-pressure from the target
//     slows the workers down.
//   - open loop: demands arrive on a fixed schedule (target RPS)
//     regardless of how the target is doing, and each demand's latency
//     is measured from its SCHEDULED start — a demand that had to wait
//     for a free connection slot is charged that wait. This is the
//     coordinated-omission-resistant mode: a stalled target cannot
//     silence the load that its stall prevented from being sent.
//
// Latencies accumulate into per-worker stats.Histogram instances merged
// after the run, so percentile math is shared with the monitoring
// subsystem and scales to millions of samples at fixed memory.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/stats"
	"wsupgrade/internal/xrand"
)

// ErrBadOptions reports an invalid load configuration.
var ErrBadOptions = errors.New("loadgen: bad options")

// Verdict keys of Report.Verdicts.
const (
	// VerdictOK is a correct response (the adjudicated winner matches
	// the operation's expected result).
	VerdictOK = "ok"
	// VerdictWrong is a well-formed 200 response with the wrong content
	// — a non-evident failure that slipped through adjudication (§5.2).
	VerdictWrong = "wrong"
	// VerdictFault is a SOAP fault (evident failure, delivered as such).
	VerdictFault = "fault"
	// VerdictTimeout is a demand the consumer's deadline abandoned.
	VerdictTimeout = "timeout"
	// VerdictTransport is a connection-level failure (refused, reset).
	VerdictTransport = "transport"
	// VerdictRejected is any other HTTP status.
	VerdictRejected = "rejected"
)

// Options parameterizes one load run.
type Options struct {
	// URLs are the SOAP endpoints to drive (an engine root or fleet
	// unit base, e.g. "http://host:port/flights/"). Workers round-robin
	// across them. At least one.
	URLs []string
	// Operation selects the demo operation to invoke: "add" (default)
	// or "operation1". Both have client-checkable correct answers.
	Operation string
	// Protocol selects the gateway wire protocol: "soap" (default) or
	// "json". JSON demands route by URL path (<target>/<operation>)
	// with application/json bodies.
	Protocol string
	// OpenLoop selects the target-RPS open-loop mode; the default is
	// closed-loop.
	OpenLoop bool
	// Concurrency is the worker count (closed loop) or the maximum
	// in-flight demands (open loop). Default 4 (closed), 32 (open).
	Concurrency int
	// RPS is the open-loop arrival rate. Required when OpenLoop.
	RPS float64
	// Requests stops the run after this many demands (closed loop).
	Requests int
	// Duration stops the run after this long. Open loop requires it;
	// closed loop requires Requests or Duration.
	Duration time.Duration
	// Timeout bounds each demand (default 10s). Also the latency
	// histogram's range.
	Timeout time.Duration
	// Client overrides the consumer-side HTTP client.
	Client *http.Client
	// Seed drives request-parameter generation.
	Seed uint64
	// HistogramBins sizes the latency histograms (default 1<<14).
	HistogramBins int
}

func (o *Options) normalize() error {
	if len(o.URLs) == 0 {
		return fmt.Errorf("%w: no target URLs", ErrBadOptions)
	}
	if o.Operation == "" {
		o.Operation = "add"
	}
	if o.Operation != "add" && o.Operation != "operation1" {
		return fmt.Errorf("%w: unknown operation %q", ErrBadOptions, o.Operation)
	}
	if o.Protocol == "" {
		o.Protocol = "soap"
	}
	if o.Protocol != "soap" && o.Protocol != "json" {
		return fmt.Errorf("%w: unknown protocol %q", ErrBadOptions, o.Protocol)
	}
	if o.Concurrency <= 0 {
		if o.OpenLoop {
			o.Concurrency = 32
		} else {
			o.Concurrency = 4
		}
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.HistogramBins <= 0 {
		o.HistogramBins = 1 << 14
	}
	if o.OpenLoop {
		if o.RPS <= 0 {
			return fmt.Errorf("%w: open loop needs a target RPS", ErrBadOptions)
		}
		if o.Duration <= 0 {
			return fmt.Errorf("%w: open loop needs a duration", ErrBadOptions)
		}
	} else if o.Requests <= 0 && o.Duration <= 0 {
		return fmt.Errorf("%w: closed loop needs a request count or duration", ErrBadOptions)
	}
	return nil
}

// LatencySummary is the merged latency distribution in milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// Report is one load run's machine-readable summary.
type Report struct {
	Mode        string         `json:"mode"`
	Targets     []string       `json:"targets"`
	Operation   string         `json:"operation"`
	Protocol    string         `json:"protocol"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Concurrency int            `json:"concurrency"`
	TargetRPS   float64        `json:"targetRps,omitempty"`
	Requests    int            `json:"requests"`
	DurationMS  float64        `json:"durationMs"`
	RPS         float64        `json:"rps"`
	LatencyMS   LatencySummary `json:"latencyMs"`
	// Verdicts breaks the demands down by consumer-observed outcome.
	Verdicts map[string]int `json:"verdicts"`
	// Winners counts delivered responses by the release that won
	// adjudication (the X-Wsupgrade-Winner header).
	Winners map[string]int `json:"winners,omitempty"`
}

// Errors returns the demands that did not produce a correct response.
func (r Report) Errors() int {
	return r.Requests - r.Verdicts[VerdictOK]
}

// worker accumulates one goroutine's observations, merged after the run
// (no shared state on the demand path).
type worker struct {
	hist     *stats.Histogram
	summary  stats.Summary
	verdicts map[string]int
	winners  map[string]int
	requests int
	rng      *xrand.Rand
}

// Run executes one load run. The context cancels it early; a cancelled
// run still returns the observations collected so far.
func Run(ctx context.Context, opts Options) (Report, error) {
	if err := opts.normalize(); err != nil {
		return Report{}, err
	}
	client := opts.Client
	if client == nil {
		client = httpx.NewPooledClient(opts.Timeout+5*time.Second, len(opts.URLs))
		defer client.CloseIdleConnections()
	}

	// Duration bounds *scheduling* only: demands already in flight when
	// it expires finish under their own per-demand Timeout. Cutting them
	// at the duration edge would misclassify an arbitrary tail of
	// healthy demands as timeouts.
	schedCtx := ctx
	var cancel context.CancelFunc
	if opts.Duration > 0 {
		schedCtx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	histHi := float64(opts.Timeout.Milliseconds())
	if histHi <= 0 {
		histHi = 1
	}
	workers := make([]*worker, opts.Concurrency)
	master := xrand.New(opts.Seed)
	for i := range workers {
		h, err := stats.NewHistogram(0, histHi, opts.HistogramBins)
		if err != nil {
			return Report{}, err
		}
		workers[i] = &worker{
			hist:     h,
			verdicts: make(map[string]int),
			winners:  make(map[string]int),
			rng:      master.Split(),
		}
	}

	start := time.Now()
	if opts.OpenLoop {
		runOpen(schedCtx, ctx, client, opts, workers)
	} else {
		runClosed(schedCtx, ctx, client, opts, workers)
	}
	elapsed := time.Since(start)

	return assemble(opts, workers, elapsed)
}

// runClosed: each worker loops request → response → next. schedCtx
// gates issuing new demands; demandCtx scopes demands themselves.
func runClosed(schedCtx, demandCtx context.Context, client *http.Client, opts Options, workers []*worker) {
	var mu sync.Mutex
	issued := 0
	// claim hands out demand slots so a request cap is exact even with
	// many workers.
	claim := func() bool {
		if opts.Requests <= 0 {
			return schedCtx.Err() == nil
		}
		mu.Lock()
		defer mu.Unlock()
		if issued >= opts.Requests || schedCtx.Err() != nil {
			return false
		}
		issued++
		return true
	}
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			for claim() {
				url := opts.URLs[(i+w.requests)%len(opts.URLs)]
				doOne(demandCtx, client, opts, w, url, time.Now())
			}
		}(i, w)
	}
	wg.Wait()
}

// runOpen: a pacer emits scheduled start times at the target rate; a
// bounded worker pool consumes them. Latency is measured from the
// scheduled time, so queueing delay behind a saturated target is
// charged to the target, not silently dropped. schedCtx gates the
// pacer; demandCtx scopes demands themselves.
func runOpen(schedCtx, demandCtx context.Context, client *http.Client, opts Options, workers []*worker) {
	interval := time.Duration(float64(time.Second) / opts.RPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	total := int(opts.Duration.Nanoseconds()/interval.Nanoseconds()) + 1
	sched := make(chan time.Time, total)

	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			for scheduled := range sched {
				url := opts.URLs[(i+w.requests)%len(opts.URLs)]
				doOne(demandCtx, client, opts, w, url, scheduled)
			}
		}(i, w)
	}

	t0 := time.Now()
	for k := 0; k < total; k++ {
		target := t0.Add(time.Duration(k) * interval)
		if d := time.Until(target); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-schedCtx.Done():
				timer.Stop()
				close(sched)
				wg.Wait()
				return
			}
		} else if schedCtx.Err() != nil {
			break
		}
		sched <- target
	}
	close(sched)
	wg.Wait()
}

// doOne issues one demand and classifies its outcome. scheduled is the
// latency clock's zero point (now for closed loop, the pacer's slot for
// open loop).
func doOne(ctx context.Context, client *http.Client, opts Options, w *worker, url string, scheduled time.Time) {
	payload, check := w.buildRequest(opts)
	contentType := soap.ContentType
	if opts.Protocol == "json" {
		// JSON demands route by path: <target>/<operation>.
		url = strings.TrimSuffix(url, "/") + "/" + opts.Operation
		contentType = "application/json"
	}
	reqCtx, cancel := context.WithTimeout(ctx, opts.Timeout)
	verdict, winner := post(reqCtx, client, url, contentType, payload, check)
	cancel()

	latency := time.Since(scheduled)
	w.requests++
	w.verdicts[verdict]++
	if winner != "" {
		w.winners[winner]++
	}
	ms := float64(latency.Nanoseconds()) / 1e6
	w.hist.Observe(ms)
	w.summary.Observe(ms)
}

// buildRequest produces the demand payload and its correctness check.
func (w *worker) buildRequest(opts Options) ([]byte, func(body []byte) bool) {
	if opts.Protocol == "json" {
		return w.buildJSONRequest(opts.Operation)
	}
	switch opts.Operation {
	case "operation1":
		p1 := w.rng.Intn(1000)
		p2 := fmt.Sprintf("load-%d", w.rng.Intn(1000))
		env, _ := soap.Envelope(service.Operation1Request{Param1: p1, Param2: p2})
		want := fmt.Sprintf("%s/%d", p2, p1*2)
		return env, func(body []byte) bool {
			var out service.Operation1Response
			return decodeReply(body, &out) && out.Op1Result == want
		}
	default: // add
		a, b := w.rng.Intn(10000), w.rng.Intn(10000)
		env, _ := soap.Envelope(service.AddRequest{A: a, B: b})
		want := a + b
		return env, func(body []byte) bool {
			var out service.AddResponse
			return decodeReply(body, &out) && out.Sum == want
		}
	}
}

// buildJSONRequest is buildRequest's JSON-gateway arm: same logical
// demands, REST bodies.
func (w *worker) buildJSONRequest(operation string) ([]byte, func(body []byte) bool) {
	switch operation {
	case "operation1":
		p1 := w.rng.Intn(1000)
		p2 := fmt.Sprintf("load-%d", w.rng.Intn(1000))
		body, _ := json.Marshal(service.Operation1JSONRequest{Param1: p1, Param2: p2})
		want := fmt.Sprintf("%s/%d", p2, p1*2)
		return body, func(reply []byte) bool {
			var out service.Operation1JSONResponse
			return json.Unmarshal(reply, &out) == nil && out.Op1Result == want
		}
	default: // add
		a, b := w.rng.Intn(10000), w.rng.Intn(10000)
		body, _ := json.Marshal(service.AddJSONRequest{A: a, B: b})
		want := a + b
		return body, func(reply []byte) bool {
			var out service.AddJSONResponse
			return json.Unmarshal(reply, &out) == nil && out.Sum == want
		}
	}
}

// decodeReply decodes a response envelope's body element into v.
func decodeReply(envelope []byte, v interface{}) bool {
	parsed, err := soap.Parse(envelope)
	if err != nil || parsed.Fault != nil {
		return false
	}
	return parsed.DecodeBody(v) == nil
}

// post issues the demand and classifies the consumer-observed outcome.
func post(ctx context.Context, client *http.Client, url, contentType string, payload []byte, check func([]byte) bool) (verdict, winner string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(payload)))
	if err != nil {
		return VerdictTransport, ""
	}
	req.Header.Set("Content-Type", contentType)
	res, err := client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return VerdictTimeout, ""
		}
		return VerdictTransport, ""
	}
	defer res.Body.Close()
	body, err := httpx.ReadBounded(res.Body, httpx.DefaultMaxResponseBytes)
	if err != nil {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return VerdictTimeout, ""
		}
		return VerdictTransport, ""
	}
	winner = res.Header.Get("X-Wsupgrade-Winner")
	switch res.StatusCode {
	case http.StatusOK:
		if check(body) {
			return VerdictOK, winner
		}
		return VerdictWrong, winner
	case http.StatusInternalServerError:
		return VerdictFault, winner
	default:
		return VerdictRejected, winner
	}
}

// assemble merges the per-worker observations into the report.
func assemble(opts Options, workers []*worker, elapsed time.Duration) (Report, error) {
	merged := workers[0].hist
	var summary stats.Summary
	verdicts := make(map[string]int)
	winners := make(map[string]int)
	requests := 0
	for i, w := range workers {
		if i > 0 {
			if err := merged.Merge(w.hist); err != nil {
				return Report{}, err
			}
		}
		summary.Merge(w.summary)
		for k, v := range w.verdicts {
			verdicts[k] += v
		}
		for k, v := range w.winners {
			winners[k] += v
		}
		requests += w.requests
	}
	mode := "closed"
	if opts.OpenLoop {
		mode = "open"
	}
	rep := Report{
		Mode:        mode,
		Targets:     opts.URLs,
		Operation:   opts.Operation,
		Protocol:    opts.Protocol,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Concurrency: opts.Concurrency,
		TargetRPS:   opts.RPS,
		Requests:    requests,
		DurationMS:  float64(elapsed.Nanoseconds()) / 1e6,
		Verdicts:    verdicts,
		Winners:     winners,
	}
	if elapsed > 0 {
		rep.RPS = float64(requests) / elapsed.Seconds()
	}
	if requests > 0 {
		rep.LatencyMS = LatencySummary{
			P50:  merged.Quantile(0.50),
			P95:  merged.Quantile(0.95),
			P99:  merged.Quantile(0.99),
			Max:  summary.Max(),
			Mean: summary.Mean(),
		}
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
