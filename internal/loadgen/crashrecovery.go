package loadgen

// crash-recovery: the mediator itself is the crash victim. The other
// scenarios kill releases and require the mediator to shield consumers;
// here the mediator process takes a SIGKILL mid-Observation under load
// — no drain, no flush barrier — and the claim is the durable-campaign
// contract: the restarted process resumes the exact §4.1 phase and the
// posterior of its last journal snapshot, consumers see only transport
// errors during the outage window, and service is clean again after the
// restart. The mediator runs as a real subprocess (built from
// ./cmd/upgraded) because SIGKILL cannot be delivered to a goroutine.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"wsupgrade/internal/faulty"
	"wsupgrade/internal/journal"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/service"
)

// buildMediator compiles ./cmd/upgraded into dir. It needs the Go
// toolchain and a cwd inside the module — both true wherever the
// scenarios themselves run from source.
func buildMediator(dir string) (string, error) {
	bin := filepath.Join(dir, "upgraded")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/upgraded")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building mediator: %v\n%s", err, out)
	}
	return bin, nil
}

// mediatorProc is one running mediator subprocess.
type mediatorProc struct {
	cmd  *exec.Cmd
	base string
}

// startMediator launches the binary and waits for its -addr-file.
func startMediator(ctx context.Context, bin string, logw io.Writer, args ...string) (*mediatorProc, error) {
	addrDir, err := os.MkdirTemp("", "wsupgrade-addr-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(addrDir)
	addrFile := filepath.Join(addrDir, "addr")
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)...)
	if logw == nil {
		logw = io.Discard
	}
	cmd.Stdout = logw
	cmd.Stderr = logw
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return &mediatorProc{cmd: cmd, base: "http://" + string(data)}, nil
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, fmt.Errorf("mediator never wrote its addr-file")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill delivers SIGKILL and reaps the process.
func (m *mediatorProc) kill() {
	_ = m.cmd.Process.Kill()
	_ = m.cmd.Wait()
}

func crashRecovery(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error) {
	var res ScenarioResult
	const oldV, newV = "1.0", "1.1"

	workDir, err := os.MkdirTemp("", "wsupgrade-crashrec-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(workDir)
	bin, err := buildMediator(workDir)
	if err != nil {
		return res, err
	}

	// Two live demo releases, outliving the mediator's death.
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	endpoints := make(map[string]string, 2)
	for _, version := range []string{oldV, newV} {
		release, err := service.New(service.DemoContract(version), service.DemoBehaviours(), service.FaultPlan{})
		if err != nil {
			return res, err
		}
		srv := faulty.NewServer(release.Handler())
		if err := srv.Start(); err != nil {
			return res, err
		}
		closers = append(closers, srv.Close)
		endpoints[version] = srv.URL()
	}

	jdir := filepath.Join(workDir, "journals")
	cfgPath := filepath.Join(workDir, "fleet.json")
	cfg := fmt.Sprintf(`{"units": [{"name": "svc", "phase": "observation", "criterion": 0,
		"releases": [{"version": %q, "url": %q}, {"version": %q, "url": %q}]}]}`,
		oldV, endpoints[oldV], newV, endpoints[newV])
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		return res, err
	}
	args := []string{"-fleet", cfgPath, "-journal-dir", jdir, "-snapshot-interval", "50ms"}

	med, err := startMediator(ctx, bin, opts.Log, args...)
	if err != nil {
		return res, err
	}
	killed := false
	defer func() {
		if !killed {
			med.kill()
		}
	}()

	batch := opts.Requests / 3
	if batch < 30 {
		batch = 30
	}
	run := func(base, stage string) (Report, error) {
		opts.logf("crash-recovery: %s — %d demands", stage, batch)
		return Run(ctx, Options{
			URLs:        []string{base + "/svc/"},
			Concurrency: opts.Concurrency,
			Requests:    batch,
			Seed:        opts.Seed,
		})
	}

	before, err := run(med.base, "baseline (observation, journaled)")
	if err != nil {
		return res, err
	}

	// Let a snapshot capture the traffic, so the SIGKILL loses at most
	// one interval's worth of posterior.
	jpath := filepath.Join(jdir, "svc.journal")
	snapDeadline := time.Now().Add(10 * time.Second)
	for {
		data, rerr := os.ReadFile(jpath)
		if rerr == nil {
			if st, _, derr := journal.Decode(data); derr == nil && st.Snapshot != nil &&
				st.Snapshot.Campaign.Joint.N >= batch/2 {
				break
			}
		}
		if time.Now().After(snapDeadline) {
			return res, fmt.Errorf("no journal snapshot captured the baseline traffic")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// kill -9, mid-Observation, listener still advertised.
	opts.logf("crash-recovery: SIGKILL %d", med.cmd.Process.Pid)
	med.kill()
	killed = true
	during, err := run(med.base, "outage window")
	if err != nil {
		return res, err
	}

	// The journal on disk after an unclean death is the recovery
	// contract: last snapshot plus transitions journaled after it.
	data, err := os.ReadFile(jpath)
	if err != nil {
		return res, err
	}
	expected, _, err := journal.Decode(data)
	if err != nil {
		return res, fmt.Errorf("post-kill journal replay: %w", err)
	}

	med2, err := startMediator(ctx, bin, opts.Log, args...)
	if err != nil {
		return res, err
	}
	defer med2.kill()
	after, err := run(med2.base, "restarted mediator")
	if err != nil {
		return res, err
	}
	eng, err := resumedCampaign(med2.base)
	if err != nil {
		return res, err
	}

	res.Batches = []Report{before, during, after}
	res.check(before.Verdicts[VerdictOK] == before.Requests,
		"baseline verdicts %v", before.Verdicts)
	res.check(during.Verdicts[VerdictTransport] == during.Requests,
		"outage verdicts %v: consumers must see only transport errors while the mediator is down", during.Verdicts)
	res.check(during.Verdicts[VerdictWrong] == 0,
		"%d wrong responses during the outage window", during.Verdicts[VerdictWrong])
	res.check(after.Verdicts[VerdictOK] == after.Requests,
		"post-restart verdicts %v: service did not recover cleanly", after.Verdicts)

	res.check(expected.Phase == lifecycle.PhaseObservation,
		"journal replayed phase %v, want observation", expected.Phase)
	res.check(expected.Snapshot != nil && expected.Snapshot.Campaign.Joint.N > 0,
		"journal holds no posterior snapshot")
	res.check(eng.Phase == lifecycle.PhaseObservation.String(),
		"restarted mediator resumed phase %q, want observation", eng.Phase)
	if expected.Snapshot != nil {
		// The restarted posterior is the snapshot plus the post-restart
		// batch. A mediator that silently started a fresh campaign would
		// hold only the post-restart batch — strictly less than this.
		wantMin := expected.Snapshot.Campaign.Joint.N + batch/2
		res.check(eng.Demands >= wantMin,
			"restarted posterior has %d joint demands, want >= snapshot+batch/2 = %d", eng.Demands, wantMin)
	}
	return res, nil
}

// resumedCampaign reads the restarted mediator's phase and posterior
// size from the fleet admin API.
func resumedCampaign(base string) (struct {
	Phase   string
	Demands int
}, error) {
	var out struct {
		Phase   string
		Demands int
	}
	var st struct {
		Phase string `json:"phase"`
	}
	if err := getJSONInto(base+"/fleet/units/svc", &st); err != nil {
		return out, err
	}
	var rep struct {
		Demands int `json:"Demands"`
	}
	if err := getJSONInto(base+"/fleet/units/svc/confidence", &rep); err != nil {
		return out, err
	}
	out.Phase = st.Phase
	out.Demands = rep.Demands
	return out, nil
}

// getJSONInto fetches a JSON admin resource.
func getJSONInto(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}
