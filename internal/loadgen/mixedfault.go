package loadgen

import (
	"context"
	"time"

	"wsupgrade/internal/faulty"
)

// mixedFault is the combined chaos campaign: three fault modes injected
// concurrently across two upgrade units in one run. The flights unit's
// new release both omits responses (10%, past the engine timeout) and
// suffers latency spikes; the hotels unit's new release returns
// well-formed but wrong answers on every demand. The claims are the
// paper's two central dependability properties, asserted under combined
// stress rather than one fault at a time:
//
//   - corrupt never wins: no wrong answer reaches a consumer, and the
//     corrupt release never wins adjudication (§4.2, §5.2.1);
//   - availability-confidence separation: the monitoring subsystem keeps
//     high availability confidence in the healthy old release while the
//     omitting release's confidence is visibly depressed (§6.1), with
//     the cross-unit chaos not blurring either verdict.
func mixedFault(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error) {
	var res ScenarioResult
	const oldA, newA = "1.0", "1.1"
	const oldB, newB = "2.0", "2.1"
	d, err := deploy(opts.Seed,
		unitSpec{
			name: "flights",
			old:  releaseSpec{version: oldA},
			new: releaseSpec{version: newA, faults: []faulty.Fault{
				{Mode: faulty.Omission, Rate: 0.1},
				{Mode: faulty.LatencySpike, Rate: 0.15, Latency: 40 * time.Millisecond},
			}},
			timeout: 300 * time.Millisecond,
		},
		unitSpec{
			name: "hotels",
			old:  releaseSpec{version: oldB},
			new:  releaseSpec{version: newB, faults: []faulty.Fault{{Mode: faulty.Corrupt, Rate: 1}}},
		},
	)
	if err != nil {
		return res, err
	}
	defer d.close()

	opts.logf("mixed-fault: driving %d demands across %s and %s",
		opts.Requests, d.unitURL("flights"), d.unitURL("hotels"))
	load, err := Run(ctx, Options{
		URLs:        []string{d.unitURL("flights"), d.unitURL("hotels")},
		Concurrency: opts.Concurrency,
		Requests:    opts.Requests,
		Seed:        opts.Seed,
	})
	if err != nil {
		return res, err
	}
	res.Load = &load
	flights := unitReport(d, "flights", oldA, newA)
	hotels := unitReport(d, "hotels", oldB, newB)
	res.Units = []UnitReport{flights, hotels}
	res.Injected = injected(d)

	// The campaign only counts if all three fault modes actually fired,
	// concurrently, on their respective units.
	res.check(res.Injected["flights"][faulty.Omission.String()] > 0,
		"no omissions injected on flights")
	res.check(res.Injected["flights"][faulty.LatencySpike.String()] > 0,
		"no latency spikes injected on flights")
	res.check(res.Injected["hotels"][faulty.Corrupt.String()] > 0,
		"no corrupt responses injected on hotels")

	// Consumers are fully shielded: correct responses only, from the old
	// releases, on both units at once.
	res.check(load.Requests == opts.Requests, "drove %d demands, want %d", load.Requests, opts.Requests)
	res.check(load.Verdicts[VerdictOK] == load.Requests,
		"verdicts %v: combined faults leaked to consumers", load.Verdicts)
	res.check(load.Verdicts[VerdictWrong] == 0,
		"%d corrupt responses reached a consumer", load.Verdicts[VerdictWrong])
	res.check(load.Winners[newB] == 0,
		"corrupt release %s won adjudication %d times", newB, load.Winners[newB])

	// Correctness: the oracle charges the corrupt unit's failures to its
	// new release, and white-box confidence in it stays low.
	res.check(hotels.NewJudgedFailures >= hotels.NewDemands*9/10,
		"oracle judged only %d of %d corrupt responses as failures", hotels.NewJudgedFailures, hotels.NewDemands)
	res.check(hotels.NewConfidence < 0.5,
		"confidence in the 100%%-corrupt release = %.3f", hotels.NewConfidence)

	// Availability-confidence separation on the omitting unit: trust in
	// the old release, visible distrust of the new one — undisturbed by
	// the other unit's concurrent corruption.
	res.check(flights.NewResponses < flights.NewDemands,
		"monitor saw %d/%d responses from the omitting release — omissions unobserved",
		flights.NewResponses, flights.NewDemands)
	res.check(flights.OldAvailConfidence >= 0.9,
		"availability confidence in the healthy old release = %.3f", flights.OldAvailConfidence)
	res.check(flights.NewAvailConfidence <= 0.5,
		"availability confidence in the 10%%-omitting release = %.3f — should be depressed",
		flights.NewAvailConfidence)
	return res, nil
}
