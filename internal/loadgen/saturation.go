package loadgen

import (
	"context"
	"time"
)

// SaturationReport is the open-loop ramp's summary: where the mediator's
// latency knee sits and what it looks like. The knee is the first ramp
// step whose p99 (measured from scheduled start, so queueing behind the
// saturated mediator is charged) degrades past the limit, or whose
// achieved throughput falls visibly short of the offered rate.
type SaturationReport struct {
	// StepDurationMS is each ramp step's length.
	StepDurationMS float64 `json:"stepDurationMs"`
	// BaselineP99MS is the first (unsaturated) step's p99.
	BaselineP99MS float64 `json:"baselineP99Ms"`
	// P99LimitMS is the degradation threshold derived from the baseline.
	P99LimitMS float64 `json:"p99LimitMs"`
	// Saturated reports whether the ramp found a knee before exhausting
	// its levels.
	Saturated bool `json:"saturated"`
	// KneeTargetRPS is the offered rate of the degraded step (the last
	// ramp level when Saturated is false).
	KneeTargetRPS float64 `json:"kneeTargetRps"`
	// KneeRPS is the throughput actually achieved at that step.
	KneeRPS float64 `json:"kneeRps"`
	// KneeP99MS is that step's p99 latency.
	KneeP99MS float64 `json:"kneeP99Ms"`
	// LastHealthyRPS is the achieved throughput of the last step within
	// the latency limit — the usable capacity estimate.
	LastHealthyRPS float64 `json:"lastHealthyRps"`
}

// saturation ramps open-loop load against a healthy two-release unit
// until the p99 degrades past its threshold, reporting the knee. Each
// step doubles the offered rate; every step's full load report ships in
// Batches so the whole curve is machine-readable, not just the knee.
func saturation(ctx context.Context, opts ScenarioOptions) (ScenarioResult, error) {
	var res ScenarioResult
	const oldV, newV = "1.0", "1.1"
	d, err := deploy(opts.Seed, unitSpec{
		name: "svc",
		old:  releaseSpec{version: oldV},
		new:  releaseSpec{version: newV},
	})
	if err != nil {
		return res, err
	}
	defer d.close()

	stepDur := opts.Duration / 4
	if stepDur < time.Second {
		stepDur = time.Second
	}
	sat := &SaturationReport{StepDurationMS: float64(stepDur.Milliseconds())}
	res.Saturation = sat

	const (
		startRPS  = 100.0
		maxLevels = 10
	)
	rps := startRPS
	for level := 0; level < maxLevels; level++ {
		opts.logf("saturation: step %d — %.0f rps offered for %v", level+1, rps, stepDur)
		step, err := Run(ctx, Options{
			URLs:        []string{d.unitURL("svc")},
			OpenLoop:    true,
			RPS:         rps,
			Duration:    stepDur,
			Concurrency: 64,
			Timeout:     5 * time.Second,
			Seed:        opts.Seed,
		})
		if err != nil {
			return res, err
		}
		res.Batches = append(res.Batches, step)

		if level == 0 {
			sat.BaselineP99MS = step.LatencyMS.P99
			// Generous: saturation shows up as an order-of-magnitude p99
			// cliff (queueing), not a 2x wobble on a noisy box.
			sat.P99LimitMS = 5 * sat.BaselineP99MS
			if sat.P99LimitMS < 20 {
				sat.P99LimitMS = 20
			}
			res.check(step.Verdicts[VerdictOK] == step.Requests,
				"baseline step verdicts %v: unhealthy before any load", step.Verdicts)
		}

		degraded := step.LatencyMS.P99 > sat.P99LimitMS || step.RPS < rps*0.9
		if degraded {
			sat.Saturated = true
			sat.KneeTargetRPS = rps
			sat.KneeRPS = step.RPS
			sat.KneeP99MS = step.LatencyMS.P99
			break
		}
		sat.LastHealthyRPS = step.RPS
		sat.KneeTargetRPS = rps
		sat.KneeRPS = step.RPS
		sat.KneeP99MS = step.LatencyMS.P99
		if ctx.Err() != nil {
			break
		}
		rps *= 2
	}

	res.check(len(res.Batches) >= 2 || sat.Saturated,
		"ramp produced a single healthy step — no curve to report")
	opts.logf("saturation: knee at %.0f offered rps (achieved %.0f, p99 %.1fms, saturated=%v)",
		sat.KneeTargetRPS, sat.KneeRPS, sat.KneeP99MS, sat.Saturated)
	return res, nil
}
