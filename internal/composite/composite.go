// Package composite builds composite Web Services: services whose
// operations are implemented by invoking component WSs provided by third
// parties (Fig 1). The composite's "glue" code calls its components
// through named bindings that can be re-pointed online — at a concrete
// release, or at a managed-upgrade middleware (Fig 4) — without touching
// the glue.
//
// The package also wires the §7.2 upgrade-notification path: a composite
// can subscribe to the registry and react to a component's new release
// (typically by starting a managed upgrade rather than switching
// immediately).
package composite

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/wsdl"
)

// Errors reported by the composite runtime.
var (
	// ErrUnknownComponent reports a call through an unbound component.
	ErrUnknownComponent = errors.New("composite: unknown component")
	// ErrBadComposite reports an invalid composite definition.
	ErrBadComposite = errors.New("composite: bad definition")
)

// Deps gives glue code access to the composite's component bindings.
type Deps struct {
	svc *Service
}

// Call invokes an operation on a named component, decoding the response
// into out (which may be nil). Transient transport failures are retried
// per the binding's policy; SOAP faults are returned as *soap.Fault.
func (d *Deps) Call(ctx context.Context, component, operation string, in, out interface{}) error {
	c, retry, err := d.svc.binding(component)
	if err != nil {
		return err
	}
	body, err := soap.Envelope(in)
	if err != nil {
		return err
	}
	res, err := httpx.PostXML(ctx, c.HTTP, c.URL, soap.ContentType, body, retry)
	if err != nil {
		return fmt.Errorf("composite: component %s: %w", component, err)
	}
	parsed, perr := soap.Parse(res.Body)
	switch {
	case res.Status == http.StatusInternalServerError && perr == nil && parsed.Fault != nil:
		return parsed.Fault
	case res.Status != http.StatusOK:
		return fmt.Errorf("composite: component %s: HTTP %d", component, res.Status)
	case perr != nil:
		return fmt.Errorf("composite: component %s: %w", component, perr)
	}
	if out == nil {
		return nil
	}
	return parsed.DecodeBody(out)
}

// Endpoint returns the URL a component is currently bound to.
func (d *Deps) Endpoint(component string) (string, error) {
	c, _, err := d.svc.binding(component)
	if err != nil {
		return "", err
	}
	return c.URL, nil
}

// GlueFunc implements one composite operation: it receives the decoded
// request context and the component bindings.
type GlueFunc func(ctx context.Context, req *soap.Request, deps *Deps) (interface{}, error)

// Service is a composite Web Service runtime.
type Service struct {
	contract wsdl.Contract
	srv      *soap.Server

	mu       sync.RWMutex
	bindings map[string]*binding
	onUpg    func(registry.Entry)
}

type binding struct {
	client *soap.Client
	retry  httpx.RetryPolicy
}

// New builds a composite service for the given contract. Every contract
// operation must receive glue via Handle before serving.
func New(contract wsdl.Contract) (*Service, error) {
	if err := contract.Validate(); err != nil {
		return nil, fmt.Errorf("composite: %w", err)
	}
	return &Service{
		contract: contract,
		srv:      soap.NewServer(),
		bindings: make(map[string]*binding),
	}, nil
}

// Contract returns the composite's own contract.
func (s *Service) Contract() wsdl.Contract { return s.contract }

// Bind points a component name at a URL. Rebinding an existing name
// replaces the target online — the glue never notices.
func (s *Service) Bind(name, url string, opts ...BindOption) error {
	if name == "" || url == "" {
		return fmt.Errorf("%w: binding needs name and url", ErrBadComposite)
	}
	b := &binding{
		client: &soap.Client{URL: url, HTTP: httpx.NewClient(5 * time.Second)},
		retry:  httpx.DefaultRetry,
	}
	for _, o := range opts {
		o(b)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bindings[name] = b
	return nil
}

// BindOption configures a component binding.
type BindOption func(*binding)

// WithHTTP overrides the binding's HTTP client.
func WithHTTP(c *http.Client) BindOption {
	return func(b *binding) { b.client.HTTP = c }
}

// WithRetry overrides the transient-failure retry policy.
func WithRetry(p httpx.RetryPolicy) BindOption {
	return func(b *binding) { b.retry = p }
}

func (s *Service) binding(name string) (*soap.Client, httpx.RetryPolicy, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.bindings[name]
	if !ok {
		return nil, httpx.RetryPolicy{}, fmt.Errorf("%w: %q", ErrUnknownComponent, name)
	}
	return b.client, b.retry, nil
}

// Components lists the bound component names, sorted.
func (s *Service) Components() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.bindings))
	for n := range s.bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handle installs glue for one contract operation.
func (s *Service) Handle(operation string, glue GlueFunc) error {
	op, ok := s.contract.Operation(operation)
	if !ok {
		return fmt.Errorf("%w: operation %q not in contract", ErrBadComposite, operation)
	}
	s.srv.Handle(op.RequestElement(), func(ctx context.Context, req *soap.Request) (interface{}, error) {
		return glue(ctx, req, &Deps{svc: s})
	})
	return nil
}

// OnUpgrade registers the reaction to a component upgrade notification
// delivered through NotificationHandler.
func (s *Service) OnUpgrade(fn func(registry.Entry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onUpg = fn
}

// NotificationHandler accepts the registry's §7.2 callback POSTs (the
// new release's entry as XML) and forwards them to the OnUpgrade hook.
func (s *Service) NotificationHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var e registry.Entry
		if err := xml.Unmarshal(data, &e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.RLock()
		fn := s.onUpg
		s.mu.RUnlock()
		if fn != nil {
			fn(e)
		}
		w.WriteHeader(http.StatusOK)
	})
}

// Handler returns the composite's HTTP surface: SOAP at "/", WSDL at
// "/wsdl", upgrade notifications at "/notify", liveness at "/healthz".
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.srv)
	mux.Handle("/notify", s.NotificationHandler())
	mux.HandleFunc("/wsdl", func(w http.ResponseWriter, r *http.Request) {
		def, err := wsdl.Generate(s.contract, "http://"+r.Host+"/")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		data, err := def.Marshal()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}

// ResolveNewest binds a component to the newest published release of a
// service found in the registry — the discovery path of Fig 1.
func (s *Service) ResolveNewest(ctx context.Context, reg *registry.Client, component, serviceName string, opts ...BindOption) error {
	entries, err := reg.Find(ctx, serviceName)
	if err != nil {
		return fmt.Errorf("composite: resolving %s: %w", serviceName, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("%w: no releases of %s", registry.ErrNotFound, serviceName)
	}
	return s.Bind(component, entries[0].URL, opts...)
}
