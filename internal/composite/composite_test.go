package composite

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wsupgrade/internal/httpx"
	"wsupgrade/internal/registry"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/wsdl"
)

// compositeContract is a composite WS with one operation implemented by
// calling the demo component twice (Fig 1's Composite Web-Service).
func compositeContract() wsdl.Contract {
	return wsdl.Contract{
		Name:            "CompositeWS",
		TargetNamespace: "urn:wsupgrade:composite",
		Version:         "1.0",
		Operations: []wsdl.Operation{
			{
				Name:   "sumTwice",
				Input:  []wsdl.Param{{Name: "a", Type: "s:int"}, {Name: "b", Type: "s:int"}},
				Output: []wsdl.Param{{Name: "total", Type: "s:int"}},
			},
		},
	}
}

type sumTwiceRequest struct {
	XMLName struct{} `xml:"sumTwiceRequest"`
	A       int      `xml:"a"`
	B       int      `xml:"b"`
}

type sumTwiceResponse struct {
	XMLName struct{} `xml:"sumTwiceResponse"`
	Total   int      `xml:"total"`
}

func startComponent(t *testing.T, version string) *httptest.Server {
	t.Helper()
	rel, err := service.New(service.DemoContract(version), service.DemoBehaviours(), service.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rel.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func buildComposite(t *testing.T) *Service {
	t.Helper()
	svc, err := New(compositeContract())
	if err != nil {
		t.Fatal(err)
	}
	err = svc.Handle("sumTwice", func(ctx context.Context, req *soap.Request, deps *Deps) (interface{}, error) {
		var in sumTwiceRequest
		if err := req.Decode(&in); err != nil {
			return nil, soap.ClientFault(err.Error())
		}
		var first service.AddResponse
		if err := deps.Call(ctx, "ws1", "add", service.AddRequest{A: in.A, B: in.B}, &first); err != nil {
			return nil, err
		}
		var second service.AddResponse
		if err := deps.Call(ctx, "ws1", "add", service.AddRequest{A: first.Sum, B: first.Sum}, &second); err != nil {
			return nil, err
		}
		return sumTwiceResponse{Total: second.Sum}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestCompositeGlueCallsComponent(t *testing.T) {
	comp := startComponent(t, "1.0")
	svc := buildComposite(t)
	if err := svc.Bind("ws1", comp.URL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &soap.Client{URL: ts.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
	var out sumTwiceResponse
	if err := c.Call(context.Background(), "sumTwice", sumTwiceRequest{A: 2, B: 3}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 10 { // (2+3) + (5+5) composition
		t.Fatalf("total = %d, want 10", out.Total)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := New(wsdl.Contract{}); err == nil {
		t.Fatal("empty contract accepted")
	}
	svc := buildComposite(t)
	if err := svc.Handle("ghost", nil); !errors.Is(err, ErrBadComposite) {
		t.Fatalf("ghost operation: %v", err)
	}
	if err := svc.Bind("", "http://x"); !errors.Is(err, ErrBadComposite) {
		t.Fatalf("empty binding: %v", err)
	}
}

func TestUnboundComponentFails(t *testing.T) {
	svc := buildComposite(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &soap.Client{URL: ts.URL}
	err := c.Call(context.Background(), "sumTwice", sumTwiceRequest{A: 1, B: 1}, nil)
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if !strings.Contains(f.String, "unknown component") {
		t.Fatalf("fault = %+v", f)
	}
}

// Rebinding online: the same glue transparently reaches a different
// deployment (e.g. the upgrade middleware of Fig 4).
func TestRebindOnline(t *testing.T) {
	comp1 := startComponent(t, "1.0")
	svc := buildComposite(t)
	if err := svc.Bind("ws1", comp1.URL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &soap.Client{URL: ts.URL}
	if err := c.Call(context.Background(), "sumTwice", sumTwiceRequest{A: 1, B: 1}, nil); err != nil {
		t.Fatal(err)
	}
	// Point the binding at a dead endpoint: calls must now fail...
	if err := svc.Bind("ws1", "http://127.0.0.1:1", WithHTTP(&http.Client{Timeout: 200 * time.Millisecond})); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(context.Background(), "sumTwice", sumTwiceRequest{A: 1, B: 1}, nil); err == nil {
		t.Fatal("dead rebinding still served")
	}
	// ...and rebinding back heals it.
	if err := svc.Bind("ws1", comp1.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(context.Background(), "sumTwice", sumTwiceRequest{A: 1, B: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if got := svc.Components(); len(got) != 1 || got[0] != "ws1" {
		t.Fatalf("components = %v", got)
	}
}

func TestComponentFaultPropagates(t *testing.T) {
	// A component that always faults.
	rel, err := service.New(service.DemoContract("1.0"), service.DemoBehaviours(),
		service.FaultPlan{Profile: faultyProfile(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	comp := httptest.NewServer(rel.Handler())
	defer comp.Close()
	svc := buildComposite(t)
	if err := svc.Bind("ws1", comp.URL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &soap.Client{URL: ts.URL}
	err = c.Call(context.Background(), "sumTwice", sumTwiceRequest{A: 1, B: 1}, nil)
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want propagated fault", err)
	}
}

func TestWSDLAndHealth(t *testing.T) {
	svc := buildComposite(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/wsdl")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), "sumTwiceRequest") {
		t.Fatal("composite WSDL missing its operation")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// §7.2 end to end: registry notification reaches the composite's
// OnUpgrade hook.
func TestUpgradeNotificationFlow(t *testing.T) {
	svc := buildComposite(t)
	var mu sync.Mutex
	var got []registry.Entry
	svc.OnUpgrade(func(e registry.Entry) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, e)
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	reg := registry.NewServer()
	regTS := httptest.NewServer(reg)
	defer regTS.Close()
	regClient := &registry.Client{Base: regTS.URL}
	ctx := context.Background()

	if err := regClient.Publish(ctx, registry.Entry{Name: "WebService1", Version: "1.0", URL: "http://node1/a"}); err != nil {
		t.Fatal(err)
	}
	if err := regClient.Subscribe(ctx, "WebService1", ts.URL+"/notify"); err != nil {
		t.Fatal(err)
	}
	if err := regClient.Publish(ctx, registry.Entry{Name: "WebService1", Version: "1.1", URL: "http://node1/b"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Version != "1.1" {
		t.Fatalf("notifications = %+v", got)
	}
}

func TestResolveNewest(t *testing.T) {
	comp := startComponent(t, "1.1")
	reg := registry.NewServer()
	regTS := httptest.NewServer(reg)
	defer regTS.Close()
	regClient := &registry.Client{Base: regTS.URL}
	ctx := context.Background()
	if err := regClient.Publish(ctx, registry.Entry{Name: "WebService1", Version: "1.0", URL: "http://127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	if err := regClient.Publish(ctx, registry.Entry{Name: "WebService1", Version: "1.1", URL: comp.URL}); err != nil {
		t.Fatal(err)
	}

	svc := buildComposite(t)
	if err := svc.ResolveNewest(ctx, regClient, "ws1", "WebService1"); err != nil {
		t.Fatal(err)
	}
	url, err := (&Deps{svc: svc}).Endpoint("ws1")
	if err != nil {
		t.Fatal(err)
	}
	if url != comp.URL {
		t.Fatalf("resolved %s, want newest %s", url, comp.URL)
	}
	if err := svc.ResolveNewest(ctx, regClient, "ws1", "Ghost"); err == nil {
		t.Fatal("resolving unknown service succeeded")
	}
}

func TestNotificationHandlerValidation(t *testing.T) {
	svc := buildComposite(t)
	ts := httptest.NewServer(svc.NotificationHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL, "text/xml", strings.NewReader("not xml"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage POST = %d", resp.StatusCode)
	}
}

func faultyProfile() relmodel.Profile {
	return relmodel.Profile{ER: 1}
}

// Fig 1's exact shape: a composite WS depending on two component WSs
// provided by third parties, each independently rebindable.
func TestTwoComponentComposite(t *testing.T) {
	ws1 := startComponent(t, "1.0")
	ws2 := startComponent(t, "2.0")

	contract := wsdl.Contract{
		Name:            "CompositeWS",
		TargetNamespace: "urn:wsupgrade:composite",
		Version:         "1.0",
		Operations: []wsdl.Operation{{
			Name:   "combine",
			Input:  []wsdl.Param{{Name: "a", Type: "s:int"}, {Name: "b", Type: "s:int"}},
			Output: []wsdl.Param{{Name: "total", Type: "s:int"}},
		}},
	}
	svc, err := New(contract)
	if err != nil {
		t.Fatal(err)
	}
	err = svc.Handle("combine", func(ctx context.Context, req *soap.Request, deps *Deps) (interface{}, error) {
		var in struct {
			XMLName struct{} `xml:"combineRequest"`
			A       int      `xml:"a"`
			B       int      `xml:"b"`
		}
		if err := req.Decode(&in); err != nil {
			return nil, soap.ClientFault(err.Error())
		}
		// Glue across both components: ws1 computes a+b, ws2 doubles it.
		var first service.AddResponse
		if err := deps.Call(ctx, "ws1", "add", service.AddRequest{A: in.A, B: in.B}, &first); err != nil {
			return nil, err
		}
		var second service.AddResponse
		if err := deps.Call(ctx, "ws2", "add", service.AddRequest{A: first.Sum, B: first.Sum}, &second); err != nil {
			return nil, err
		}
		return struct {
			XMLName struct{} `xml:"combineResponse"`
			Total   int      `xml:"total"`
		}{Total: second.Sum}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Bind("ws1", ws1.URL); err != nil {
		t.Fatal(err)
	}
	if err := svc.Bind("ws2", ws2.URL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &soap.Client{URL: ts.URL}
	var out struct {
		XMLName struct{} `xml:"combineResponse"`
		Total   int      `xml:"total"`
	}
	if err := c.Call(context.Background(), "combine", struct {
		XMLName struct{} `xml:"combineRequest"`
		A       int      `xml:"a"`
		B       int      `xml:"b"`
	}{A: 3, B: 4}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 14 {
		t.Fatalf("total = %d, want 14", out.Total)
	}
	if got := svc.Components(); len(got) != 2 {
		t.Fatalf("components = %v", got)
	}
	// One component failing takes only the operations that need it down;
	// here combine needs both, so it faults — but rebinding ws2 alone
	// restores service without touching ws1.
	if err := svc.Bind("ws2", "http://127.0.0.1:1",
		WithHTTP(&http.Client{Timeout: 200 * time.Millisecond}), WithRetry(httpx.NoRetry)); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(context.Background(), "combine", struct {
		XMLName struct{} `xml:"combineRequest"`
		A       int      `xml:"a"`
		B       int      `xml:"b"`
	}{A: 1, B: 1}, nil); err == nil {
		t.Fatal("dead ws2 did not surface")
	}
	if err := svc.Bind("ws2", ws2.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(context.Background(), "combine", struct {
		XMLName struct{} `xml:"combineRequest"`
		A       int      `xml:"a"`
		B       int      `xml:"b"`
	}{A: 1, B: 1}, nil); err != nil {
		t.Fatal(err)
	}
}
