package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// OwnsFact is one function's //wsu:owns annotation: which of its
// parameters (receiver included) it takes pooled ownership of, and
// whether its result hands pooled ownership to the caller.
type OwnsFact struct {
	// Return marks the function as an acquire site: the caller owns
	// the pooled result.
	Return bool
	// Params holds the owned parameter and receiver names.
	Params map[string]bool
}

// NoallocFn is one //wsu:noalloc-annotated function: its identity plus
// the source span compiler escape diagnostics are matched against.
type NoallocFn struct {
	// Name is the (possibly method) name, for diagnostics.
	Name string
	// File is the absolute source path.
	File string
	// StartLine and EndLine span the declaration inclusive.
	StartLine, EndLine int
}

type allowEntry struct {
	analyzers map[string]bool
}

// Directives holds every //wsu: annotation of a load, collected before
// analyzers run so ownership facts resolve across packages.
type Directives struct {
	owns     map[string]*OwnsFact
	noalloc  map[string][]NoallocFn
	allows   map[string]map[int][]allowEntry
	problems []Diagnostic
}

// CollectDirectives scans every loaded package's comments.
func CollectDirectives(pkgs []*Package) *Directives {
	d := &Directives{
		owns:    map[string]*OwnsFact{},
		noalloc: map[string][]NoallocFn{},
		allows:  map[string]map[int][]allowEntry{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			d.collectFile(pkg, file)
		}
	}
	return d
}

// Owns returns the ownership fact for a function key, or nil.
func (d *Directives) Owns(key string) *OwnsFact { return d.owns[key] }

// NoallocFuncs returns the //wsu:noalloc set of one package.
func (d *Directives) NoallocFuncs(pkgPath string) []NoallocFn { return d.noalloc[pkgPath] }

// Allowed reports whether a diagnostic of the named analyzer at
// file:line is suppressed by a //wsu:allow directive.
func (d *Directives) Allowed(analyzer, file string, line int) bool {
	for _, e := range d.allows[file][line] {
		if e.analyzers[analyzer] {
			return true
		}
	}
	return false
}

// Problems returns grammar violations in the directives themselves
// (missing reasons, unknown analyzers, misplaced annotations). They are
// reported unconditionally and cannot be suppressed.
func (d *Directives) Problems() []Diagnostic { return d.problems }

const directivePrefix = "//wsu:"

func (d *Directives) collectFile(pkg *Package, file *ast.File) {
	// Declaration-attached directives (owns, noalloc) are read from
	// function doc comments; every doc comment seen here is excluded
	// from the misplacement check below.
	attached := map[*ast.Comment]bool{}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			verb, rest, isDirective := splitDirective(c.Text)
			if !isDirective {
				continue
			}
			attached[c] = true
			switch verb {
			case "owns":
				d.collectOwns(pkg, fn, c, rest)
			case "noalloc":
				d.collectNoalloc(pkg, fn)
			case "allow":
				d.collectAllow(pkg, c, rest)
			default:
				d.problemAt(pkg, c.Pos(), "unknown directive //wsu:%s", verb)
			}
		}
	}
	for _, group := range file.Comments {
		for _, c := range group.List {
			if attached[c] {
				continue
			}
			verb, rest, isDirective := splitDirective(c.Text)
			if !isDirective {
				continue
			}
			switch verb {
			case "allow":
				d.collectAllow(pkg, c, rest)
			case "owns", "noalloc":
				d.problemAt(pkg, c.Pos(),
					"//wsu:%s must be part of a function's doc comment", verb)
			default:
				d.problemAt(pkg, c.Pos(), "unknown directive //wsu:%s", verb)
			}
		}
	}
}

// splitDirective parses "//wsu:verb rest". Go directive convention: no
// space between // and wsu:.
func splitDirective(text string) (verb, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := text[len(directivePrefix):]
	verb, rest, _ = strings.Cut(body, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(rest), true
}

func (d *Directives) collectOwns(pkg *Package, fn *ast.FuncDecl, c *ast.Comment, rest string) {
	if rest == "" {
		d.problemAt(pkg, c.Pos(),
			"//wsu:owns needs arguments: \"return\" and/or parameter names")
		return
	}
	key := declKey(pkg, fn)
	fact := d.owns[key]
	if fact == nil {
		fact = &OwnsFact{Params: map[string]bool{}}
		d.owns[key] = fact
	}
	names := declaredParamNames(fn)
	for _, tok := range strings.Fields(strings.ReplaceAll(rest, ",", " ")) {
		if tok == "return" {
			fact.Return = true
			continue
		}
		if !names[tok] {
			d.problemAt(pkg, c.Pos(),
				"//wsu:owns names %q, not a parameter or receiver of %s", tok, fn.Name.Name)
			continue
		}
		fact.Params[tok] = true
	}
}

// declaredParamNames returns the receiver and parameter names of fn.
func declaredParamNames(fn *ast.FuncDecl) map[string]bool {
	names := map[string]bool{}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			for _, n := range f.Names {
				names[n.Name] = true
			}
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, n := range f.Names {
				names[n.Name] = true
			}
		}
	}
	return names
}

func (d *Directives) collectNoalloc(pkg *Package, fn *ast.FuncDecl) {
	start := pkg.Fset.Position(fn.Pos())
	end := pkg.Fset.Position(fn.End())
	d.noalloc[pkg.ImportPath] = append(d.noalloc[pkg.ImportPath], NoallocFn{
		Name:      fn.Name.Name,
		File:      start.Filename,
		StartLine: start.Line,
		EndLine:   end.Line,
	})
}

func (d *Directives) collectAllow(pkg *Package, c *ast.Comment, rest string) {
	names, reason, found := strings.Cut(rest, "--")
	reason = strings.TrimSpace(reason)
	if !found || reason == "" {
		d.problemAt(pkg, c.Pos(),
			"//wsu:allow needs a justification: //wsu:allow <analyzer> -- <reason>")
		return
	}
	entry := allowEntry{analyzers: map[string]bool{}}
	for _, tok := range strings.Fields(strings.ReplaceAll(names, ",", " ")) {
		if ByName(tok) == nil {
			d.problemAt(pkg, c.Pos(), "//wsu:allow names unknown analyzer %q", tok)
			continue
		}
		entry.analyzers[tok] = true
	}
	if len(entry.analyzers) == 0 {
		d.problemAt(pkg, c.Pos(), "//wsu:allow suppresses no analyzer")
		return
	}
	pos := pkg.Fset.Position(c.Pos())
	line := pos.Line
	if aloneOnLine(pos) {
		// A stand-alone allow comment suppresses the following line.
		line++
	}
	if d.allows[pos.Filename] == nil {
		d.allows[pos.Filename] = map[int][]allowEntry{}
	}
	d.allows[pos.Filename][line] = append(d.allows[pos.Filename][line], entry)
}

// aloneOnLine reports whether nothing but whitespace precedes the
// comment on its source line.
func aloneOnLine(pos token.Position) bool {
	data, err := os.ReadFile(pos.Filename)
	if err != nil {
		return false
	}
	// Walk back from the comment's offset to the preceding newline.
	for i := pos.Offset - 1; i >= 0; i-- {
		switch data[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}

func (d *Directives) problemAt(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	d.problems = append(d.problems, Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: "wsuvet",
		Message:  fmt.Sprintf(format, args...),
	})
}
