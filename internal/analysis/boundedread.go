package analysis

import (
	"go/ast"
	"go/types"
)

// BoundedRead guards the PR 2 OOM vector: a replicated web service
// under fault injection can stream an arbitrarily large (or endless)
// body, so every read of an HTTP response or request body must go
// through a bounded reader (httpx.ReadBounded, io.LimitReader,
// http.MaxBytesReader). The analyzer flags io.ReadAll, io.Copy into
// growable in-memory buffers, and decoders handed a body stream
// directly. The transport packages internal/httpx and internal/wire
// are exempt — they are where the bounding lives.
var BoundedRead = &Analyzer{
	Name: "boundedread",
	Doc:  "HTTP bodies are read through bounded readers only",
	Run:  runBoundedRead,
}

func runBoundedRead(pass *Pass) error {
	if pathTail(pass.Pkg.ImportPath, "httpx", "wire") {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "io", "ReadAll") || isPkgFunc(fn, "io/ioutil", "ReadAll"):
				if len(call.Args) == 1 && isBounded(info, call.Args[0]) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s without a bound; read through httpx.ReadBounded or io.LimitReader", fn.Pkg().Name(), fn.Name())
			case isPkgFunc(fn, "io", "Copy"):
				if len(call.Args) == 2 && isGrowableSink(info, call.Args[0]) && !isBounded(info, call.Args[1]) {
					pass.Reportf(call.Pos(),
						"io.Copy into an unbounded in-memory buffer; wrap the source in io.LimitReader or use httpx.ReadBounded")
				}
			case isDecoderCtor(fn):
				if len(call.Args) >= 1 && isBodySelector(info, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"%s decodes straight from a body stream; read a bounded []byte first (httpx.ReadBounded)", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isPkgFunc reports whether fn is path.name.
func isPkgFunc(fn *types.Func, path, name string) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name
}

// isDecoderCtor matches stream-decoder constructors that slurp their
// reader without a size bound.
func isDecoderCtor(fn *types.Func) bool {
	return isPkgFunc(fn, "encoding/json", "NewDecoder") ||
		isPkgFunc(fn, "encoding/xml", "NewDecoder")
}

// isBounded reports whether the reader expression is already bounded:
// an io.LimitReader/http.MaxBytesReader call, or anything that is not
// an HTTP body in the first place (bytes.Reader over an in-memory
// buffer, files, …). The check is syntactic over one expression — the
// invariant it encodes is "never hand a raw body to an unbounded
// sink".
func isBounded(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		fn := calleeOf(info, call)
		if fn != nil && (isPkgFunc(fn, "io", "LimitReader") || isPkgFunc(fn, "net/http", "MaxBytesReader")) {
			return true
		}
	}
	return !isBodySelector(info, e)
}

// isBodySelector matches expressions of the shape <x>.Body where x is
// an *http.Response or *http.Request.
func isBodySelector(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Body" {
		return false
	}
	named := namedOf(info.TypeOf(sel.X))
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "net/http" {
		return false
	}
	return named.Obj().Name() == "Response" || named.Obj().Name() == "Request"
}

// isGrowableSink matches write targets that grow without bound:
// *bytes.Buffer and *strings.Builder.
func isGrowableSink(info *types.Info, e ast.Expr) bool {
	named := namedOf(info.TypeOf(ast.Unparen(e)))
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "bytes" && name == "Buffer") || (path == "strings" && name == "Builder")
}
