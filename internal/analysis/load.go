package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// ImportPath is the package's import path.
	ImportPath string
	// Name is the package name ("main" for commands).
	Name string
	// Dir is the package's source directory.
	Dir string
	// GoFiles are the non-test Go sources (base names, in Dir).
	GoFiles []string
	// Fset is the position table shared by every package of the load.
	Fset *token.FileSet
	// Files are the parsed sources, aligned with GoFiles.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression facts.
	Info *types.Info
	// Exports maps every import path in the load's dependency closure
	// to its compiled export-data file. The noalloc analyzer feeds it
	// back to the compiler as an importcfg.
	Exports map[string]string
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching patterns,
// resolving imports through compiler export data so the load works
// without network access or a populated module cache beyond the build
// cache `go list -export` maintains. Test files are not loaded: the
// invariants gate production code, and the policy analyzers explicitly
// exempt tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	sizes := types.SizesFor("gc", runtime.GOARCH)

	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg := &Package{
			ImportPath: p.ImportPath,
			Name:       p.Name,
			Dir:        p.Dir,
			GoFiles:    p.GoFiles,
			Fset:       fset,
			Exports:    exports,
		}
		for _, name := range p.GoFiles {
			file, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			pkg.Files = append(pkg.Files, file)
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(p.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		pkg.Types = tpkg
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` over patterns in dir.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var listed []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}
