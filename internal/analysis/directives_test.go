package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseDirectives writes src to disk (aloneOnLine re-reads the file),
// parses it, and collects its directives.
func parseDirectives(t *testing.T, src string) (*Directives, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{
		ImportPath: "example/d",
		Name:       file.Name.Name,
		Fset:       fset,
		Files:      []*ast.File{file},
		Info:       &types.Info{},
	}
	return CollectDirectives([]*Package{pkg}), path
}

func TestAllowPlacement(t *testing.T) {
	d, path := parseDirectives(t, `package d

func f() {
	g() //wsu:allow detrand -- same-line case
	//wsu:allow poolcheck -- stand-alone case targets the next line
	h()
}
`)
	if len(d.Problems()) != 0 {
		t.Fatalf("unexpected problems: %v", d.Problems())
	}
	if !d.Allowed("detrand", path, 4) {
		t.Errorf("same-line allow on line 4 not recorded")
	}
	if d.Allowed("poolcheck", path, 5) {
		t.Errorf("stand-alone allow must not suppress its own line")
	}
	if !d.Allowed("poolcheck", path, 6) {
		t.Errorf("stand-alone allow on line 5 must suppress line 6")
	}
	if d.Allowed("detrand", path, 6) {
		t.Errorf("allow must only suppress the analyzers it names")
	}
}

func TestDirectiveGrammarProblems(t *testing.T) {
	d, _ := parseDirectives(t, `package d

func a() {
	x() //wsu:allow detrand
	y() //wsu:allow detrand --
	z() //wsu:allow nosuch -- reason given
}

//wsu:owns
func b() {}

//wsu:owns q
func c(p int) {}

//wsu:frobnicate
func e() {}

//wsu:owns return
var v int

//wsu:noalloc
var w int
`)
	// Doc-comment directives are collected first, then free-floating
	// comments in file order.
	wantFragments := []string{
		"needs arguments",                          // bare owns
		`names "q", not a parameter`,               // owns naming a non-param
		"unknown directive //wsu:frobnicate",       // unknown verb
		"needs a justification",                    // allow with no --
		"needs a justification",                    // allow with empty reason
		`unknown analyzer "nosuch"`,                // allow naming no real analyzer
		"suppresses no analyzer",                   // ...leaving that allow empty
		"must be part of a function's doc comment", // owns on a var
		"must be part of a function's doc comment", // noalloc on a var
	}
	probs := d.Problems()
	if len(probs) != len(wantFragments) {
		t.Fatalf("got %d problems, want %d:\n%v", len(probs), len(wantFragments), probs)
	}
	for i, frag := range wantFragments {
		if !strings.Contains(probs[i].Message, frag) {
			t.Errorf("problem %d = %q, want fragment %q", i, probs[i].Message, frag)
		}
	}
}

func TestNoallocSpanCollected(t *testing.T) {
	d, path := parseDirectives(t, `package d

//wsu:noalloc
func f(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
`)
	fns := d.NoallocFuncs("example/d")
	if len(fns) != 1 {
		t.Fatalf("got %d noalloc functions, want 1", len(fns))
	}
	fn := fns[0]
	if fn.Name != "f" || fn.File != path || fn.StartLine != 4 || fn.EndLine != 10 {
		t.Errorf("span = %+v, want f %s 4..10", fn, path)
	}
}
