package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolCheck enforces the recycling discipline of pooled values: every
// pool.Slice.Get / sync.Pool.Get (and every call to a function
// annotated //wsu:owns return) must reach a matching Put on every
// return path of the acquiring function, or be explicitly handed off
// to a function annotated //wsu:owns <param>. Pooled values must stay
// function-local: storing one to shared state (a field behind a
// pointer, a global, a map, a channel) or returning one from an
// unannotated function is a diagnostic.
//
// The check is a structured abstract interpretation of each function
// body: path-sensitive through if/switch/select, alias-tracking
// through plain assignment, slicing, append-in-place and composite
// fields of local structs, and aware of the repo's idioms — comma-ok
// type assertions over sync.Pool.Get track only the assertion-success
// path, deferred closures and goroutine closures that contain a
// recycling call count as releases at their spawn point, and an
// explicit overwrite of the last variable holding a pooled value is an
// intentional drop (the sync.Pool GC-fallback pattern), not a leak.
// Functions containing goto are skipped. Intentional conditional drops
// (e.g. abandoning a poisoned pooled object to the GC) are documented
// with //wsu:allow poolcheck -- <reason>.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "pooled values are recycled on every path and never retained",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolFunc(pass, fn)
			// Function literals are checked as functions in their own
			// right too: a closure that acquires must itself recycle.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w := newPoolWalker(pass, nil)
					st := newPCState()
					w.walkStmt(st, lit.Body)
					w.checkExit(st, lit.Body.End())
				}
				return true
			})
		}
	}
	return nil
}

func checkPoolFunc(pass *Pass, fn *ast.FuncDecl) {
	if containsGoto(fn.Body) {
		return
	}
	fact := pass.Dirs.Owns(declKey(pass.Pkg, fn))
	w := newPoolWalker(pass, fact)
	st := newPCState()
	if fact != nil {
		w.bindOwnedParams(st, fn, fact)
	}
	if term := w.walkStmt(st, fn.Body); !term {
		w.checkExit(st, fn.Body.End())
	}
}

func containsGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------------------
// Interpreter state

// vkey names one tracked location: a local variable, or a field of a
// local (non-pointer) struct variable.
type vkey struct {
	obj   types.Object
	field string
}

type setStatus int8

const (
	statusLive setStatus = iota + 1
	statusReleased
)

// acquireSite describes one acquisition, shared across path states.
type acquireSite struct {
	id    int
	pos   token.Pos
	desc  string
	okObj types.Object // comma-ok guard variable, if any
}

// pcState is the per-path interpreter state.
type pcState struct {
	member map[vkey]int
	status map[int]setStatus
}

func newPCState() *pcState {
	return &pcState{member: map[vkey]int{}, status: map[int]setStatus{}}
}

func (s *pcState) clone() *pcState {
	c := newPCState()
	for k, v := range s.member {
		c.member[k] = v
	}
	for k, v := range s.status {
		c.status[k] = v
	}
	return c
}

// merge joins a sibling path back in: a set live on either path stays
// live (a put on one branch does not discharge the other), and
// membership is unioned.
func (s *pcState) merge(o *pcState) {
	for k, v := range o.member {
		if _, ok := s.member[k]; !ok {
			s.member[k] = v
		}
	}
	for id, st := range o.status {
		cur, ok := s.status[id]
		if !ok || st == statusLive || cur == statusLive {
			if st == statusLive || cur == statusLive {
				s.status[id] = statusLive
			} else {
				s.status[id] = statusReleased
			}
		}
	}
}

func (s *pcState) members(id int) int {
	n := 0
	for _, v := range s.member {
		if v == id {
			n++
		}
	}
	return n
}

type loopFrame struct {
	entryIDs map[int]bool
}

type poolWalker struct {
	pass     *Pass
	info     *types.Info
	fact     *OwnsFact
	sites    map[int]*acquireSite
	nextID   int
	reported map[int]bool
	loops    []loopFrame
}

func newPoolWalker(pass *Pass, fact *OwnsFact) *poolWalker {
	return &poolWalker{
		pass:     pass,
		info:     pass.Pkg.Info,
		fact:     fact,
		sites:    map[int]*acquireSite{},
		reported: map[int]bool{},
	}
}

func (w *poolWalker) newSite(pos token.Pos, desc string) *acquireSite {
	w.nextID++
	site := &acquireSite{id: w.nextID, pos: pos, desc: desc}
	w.sites[w.nextID] = site
	return site
}

func (w *poolWalker) bindOwnedParams(st *pcState, fn *ast.FuncDecl, fact *OwnsFact) {
	bind := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if !fact.Params[name.Name] {
					continue
				}
				obj := w.info.Defs[name]
				if obj == nil {
					continue
				}
				site := w.newSite(name.Pos(), "owned parameter "+name.Name)
				st.member[vkey{obj: obj}] = site.id
				st.status[site.id] = statusLive
			}
		}
	}
	bind(fn.Recv)
	bind(fn.Type.Params)
}

// release marks a set recycled, flagging double releases on linear
// paths.
func (w *poolWalker) release(st *pcState, id int, pos token.Pos) {
	if st.status[id] == statusReleased && !w.reported[id] {
		w.reported[id] = true
		w.pass.Reportf(pos, "pooled value (%s) recycled twice", w.sites[id].desc)
	}
	st.status[id] = statusReleased
}

// reportLive flags every live set once, at its acquisition site.
func (w *poolWalker) reportLive(st *pcState, only map[int]bool) {
	for id, status := range st.status {
		if status != statusLive || w.reported[id] {
			continue
		}
		if only != nil && !only[id] {
			continue
		}
		w.reported[id] = true
		site := w.sites[id]
		if strings.HasPrefix(site.desc, "owned parameter") {
			w.pass.Reportf(site.pos,
				"%s is not recycled on every path (missing Put or //wsu:owns handoff)", site.desc)
		} else {
			w.pass.Reportf(site.pos,
				"pooled value from %s is not recycled on every path (missing Put or //wsu:owns handoff)", site.desc)
		}
	}
}

// checkExit runs the all-paths obligation at a function exit.
func (w *poolWalker) checkExit(st *pcState, _ token.Pos) {
	w.reportLive(st, nil)
}

// iterationLocal returns the ids acquired after the innermost loop was
// entered — the sets a continue/break/body-end abandons.
func (w *poolWalker) iterationLocal(st *pcState) map[int]bool {
	if len(w.loops) == 0 {
		return map[int]bool{}
	}
	frame := w.loops[len(w.loops)-1]
	local := map[int]bool{}
	for id := range st.status {
		if !frame.entryIDs[id] {
			local[id] = true
		}
	}
	return local
}

// ---------------------------------------------------------------------------
// Statement walk

// walkStmt interprets s, returning true when control cannot continue
// past it (return, branch, panic).
func (w *poolWalker) walkStmt(st *pcState, s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt, *ast.IncDecStmt:
		return false
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if w.walkStmt(st, sub) {
				return true
			}
		}
		return false
	case *ast.LabeledStmt:
		return w.walkStmt(st, s.Stmt)
	case *ast.ExprStmt:
		if isPanicCall(w.info, s.X) {
			return true
		}
		w.evalExpr(st, s.X)
		return false
	case *ast.AssignStmt:
		w.walkAssign(st, s)
		return false
	case *ast.DeclStmt:
		w.walkDecl(st, s)
		return false
	case *ast.SendStmt:
		w.evalExpr(st, s.Chan)
		if id := w.evalExpr(st, s.Value); id >= 0 && st.status[id] == statusLive {
			w.pass.Reportf(s.Arrow,
				"pooled value (%s) sent to a channel; pooled values must stay function-local", w.sites[id].desc)
			w.reported[id] = true
			st.status[id] = statusReleased
		}
		return false
	case *ast.ReturnStmt:
		w.walkReturn(st, s)
		return true
	case *ast.BranchStmt:
		// Approximation: labeled break/continue are treated like their
		// unlabeled forms against the innermost loop.
		if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
			w.reportLive(st, w.iterationLocal(st))
		}
		return true
	case *ast.IfStmt:
		return w.walkIf(st, s)
	case *ast.ForStmt:
		w.walkStmt(st, s.Init)
		w.evalExpr(st, s.Cond)
		w.walkLoopBody(st, s.Body)
		w.walkStmt(st, s.Post)
		return false
	case *ast.RangeStmt:
		w.evalExpr(st, s.X)
		w.walkLoopBody(st, s.Body)
		return false
	case *ast.SwitchStmt:
		w.walkStmt(st, s.Init)
		w.evalExpr(st, s.Tag)
		return w.walkCases(st, s.Body, false)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st, s.Init)
		w.walkStmt(st, s.Assign)
		return w.walkCases(st, s.Body, false)
	case *ast.SelectStmt:
		return w.walkCases(st, s.Body, true)
	case *ast.DeferStmt:
		w.applyHandoff(st, s.Call)
		return false
	case *ast.GoStmt:
		w.applyHandoff(st, s.Call)
		return false
	default:
		return false
	}
}

// walkLoopBody interprets a loop body once, checking that sets
// acquired inside one iteration do not leak into the next.
func (w *poolWalker) walkLoopBody(st *pcState, body *ast.BlockStmt) {
	entry := map[int]bool{}
	for id := range st.status {
		entry[id] = true
	}
	w.loops = append(w.loops, loopFrame{entryIDs: entry})
	term := w.walkStmt(st, body)
	if !term {
		w.reportLive(st, w.iterationLocal(st))
	}
	w.loops = w.loops[:len(w.loops)-1]
}

// walkIf interprets both branches on state copies and merges the
// surviving ones, refining comma-ok acquisition guards.
func (w *poolWalker) walkIf(st *pcState, s *ast.IfStmt) bool {
	w.walkStmt(st, s.Init)
	w.evalExpr(st, s.Cond)

	thenSt := st.clone()
	elseSt := st.clone()
	w.refineAssertGuard(thenSt, elseSt, s.Cond)

	thenTerm := w.walkStmt(thenSt, s.Body)
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.walkStmt(elseSt, s.Else)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		*st = *elseSt
	case elseTerm:
		*st = *thenSt
	default:
		thenSt.merge(elseSt)
		*st = *thenSt
	}
	return false
}

// refineAssertGuard applies comma-ok knowledge: for `v, ok :=
// pool.Get().(*T)`, v is only a pooled acquisition on the ok path.
func (w *poolWalker) refineAssertGuard(thenSt, elseSt *pcState, cond ast.Expr) {
	okBranch, notOkBranch := thenSt, elseSt
	cond = ast.Unparen(cond)
	if not, ok := cond.(*ast.UnaryExpr); ok && not.Op == token.NOT {
		cond = ast.Unparen(not.X)
		okBranch, notOkBranch = elseSt, thenSt
	}
	ident, ok := cond.(*ast.Ident)
	if !ok {
		return
	}
	obj := w.info.Uses[ident]
	if obj == nil {
		return
	}
	for id, status := range notOkBranch.status {
		if status == statusLive && w.sites[id].okObj == obj {
			notOkBranch.status[id] = statusReleased
		}
	}
	_ = okBranch
}

// walkCases interprets each case clause on a state copy and merges.
func (w *poolWalker) walkCases(st *pcState, body *ast.BlockStmt, isSelect bool) bool {
	var merged *pcState
	allTerm := true
	hasDefault := false
	for _, clause := range body.List {
		caseSt := st.clone()
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.evalExpr(caseSt, e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			w.walkStmt(caseSt, c.Comm)
			stmts = c.Body
		}
		term := false
		for _, sub := range stmts {
			if term = w.walkStmt(caseSt, sub); term {
				break
			}
		}
		if !term {
			allTerm = false
			if merged == nil {
				merged = caseSt
			} else {
				merged.merge(caseSt)
			}
		}
	}
	// A switch without a default may fall through untouched; a select
	// without a default blocks until one case runs.
	fallPast := !hasDefault && !isSelect
	if merged == nil {
		if len(body.List) > 0 && !fallPast && allTerm {
			return true
		}
		return false
	}
	if fallPast {
		merged.merge(st)
	}
	*st = *merged
	return false
}

func (w *poolWalker) walkReturn(st *pcState, s *ast.ReturnStmt) {
	for _, res := range s.Results {
		id := w.evalExpr(st, res)
		if id < 0 || st.status[id] != statusLive {
			continue
		}
		if w.fact != nil && w.fact.Return {
			w.release(st, id, s.Pos())
			continue
		}
		w.pass.Reportf(s.Pos(),
			"pooled value (%s) returned from a function not annotated //wsu:owns return", w.sites[id].desc)
		w.reported[id] = true
		st.status[id] = statusReleased
	}
	w.reportLive(st, nil)
}

// ---------------------------------------------------------------------------
// Assignments

func (w *poolWalker) walkAssign(st *pcState, s *ast.AssignStmt) {
	// Tuple forms: one call or comma-ok assertion feeding several
	// left-hand sides; the pooled value (if any) is the first.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		id := w.evalRHS(st, s.Rhs[0], s)
		w.assignTo(st, s.Lhs[0], id)
		for _, extra := range s.Lhs[1:] {
			w.assignTo(st, extra, -1)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		if lit, ok := ast.Unparen(s.Rhs[i]).(*ast.CompositeLit); ok {
			if ident, ok := ast.Unparen(lhs).(*ast.Ident); ok && ident.Name != "_" {
				w.assignComposite(st, ident, lit)
				continue
			}
		}
		id := w.evalRHS(st, s.Rhs[i], s)
		w.assignTo(st, lhs, id)
	}
}

// assignComposite binds pooled values stored in fields of a freshly
// built local struct value (released later through v.Field selectors).
func (w *poolWalker) assignComposite(st *pcState, ident *ast.Ident, lit *ast.CompositeLit) {
	obj := w.info.Defs[ident]
	if obj == nil {
		obj = w.info.Uses[ident]
	}
	if obj == nil {
		w.evalExpr(st, lit)
		return
	}
	for key := range st.member {
		if key.obj == obj {
			w.dropVar(st, key)
		}
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			w.evalExpr(st, elt)
			continue
		}
		fieldIdent, isIdent := kv.Key.(*ast.Ident)
		id := w.evalExpr(st, kv.Value)
		if id >= 0 && isIdent {
			w.bindVar(st, vkey{obj: obj, field: fieldIdent.Name}, id)
		}
	}
}

func (w *poolWalker) walkDecl(st *pcState, s *ast.DeclStmt) {
	gen, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gen.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			id := w.evalExpr(st, vs.Values[i])
			if id >= 0 {
				obj := w.info.Defs[name]
				if obj != nil {
					w.bindVar(st, vkey{obj: obj}, id)
				}
			}
		}
	}
}

// evalRHS evaluates one right-hand side, recognizing the comma-ok
// acquisition guard `v, ok := pool.Get().(*T)`.
func (w *poolWalker) evalRHS(st *pcState, rhs ast.Expr, s *ast.AssignStmt) int {
	if assert, ok := ast.Unparen(rhs).(*ast.TypeAssertExpr); ok && len(s.Lhs) == 2 {
		id := w.evalExpr(st, assert.X)
		if id >= 0 {
			if okIdent, ok := s.Lhs[1].(*ast.Ident); ok && okIdent.Name != "_" {
				if obj := w.info.Defs[okIdent]; obj != nil {
					w.sites[id].okObj = obj
				}
			}
		}
		return id
	}
	return w.evalExpr(st, rhs)
}

// assignTo binds or drops tracking for one assignment target.
func (w *poolWalker) assignTo(st *pcState, lhs ast.Expr, id int) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			if id >= 0 && st.status[id] == statusLive && st.members(id) == 0 {
				// `_ = acquire()`: deliberately dropped.
				st.status[id] = statusReleased
			}
			return
		}
		obj := w.info.Defs[lhs]
		if obj == nil {
			obj = w.info.Uses[lhs]
		}
		if obj == nil {
			return
		}
		key := vkey{obj: obj}
		if id >= 0 {
			if isPackageLevel(obj) {
				w.reportStore(st, lhs.Pos(), id)
				return
			}
			w.bindVar(st, key, id)
			return
		}
		w.dropVar(st, key)
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(lhs.X).(*ast.Ident)
		if !ok {
			if id >= 0 && st.status[id] == statusLive {
				w.reportStore(st, lhs.Pos(), id)
			}
			return
		}
		baseObj := w.info.Uses[base]
		if baseObj == nil {
			baseObj = w.info.Defs[base]
		}
		if id >= 0 {
			if baseObj != nil && isLocalValueVar(baseObj) {
				w.bindVar(st, vkey{obj: baseObj, field: lhs.Sel.Name}, id)
				return
			}
			w.reportStore(st, lhs.Pos(), id)
			return
		}
		if baseObj != nil {
			w.dropVar(st, vkey{obj: baseObj, field: lhs.Sel.Name})
		}
	case *ast.StarExpr, *ast.IndexExpr:
		if id >= 0 && st.status[id] == statusLive {
			w.reportStore(st, lhs.Pos(), id)
		}
	}
}

func (w *poolWalker) reportStore(st *pcState, pos token.Pos, id int) {
	w.pass.Reportf(pos,
		"pooled value (%s) stored to shared state; pooled values must stay function-local", w.sites[id].desc)
	w.reported[id] = true
	st.status[id] = statusReleased
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}

// isLocalValueVar reports whether obj is a local, non-pointer variable:
// a composite whose fields the function still owns. A pointer-typed
// base means the field lives on a shared object.
func isLocalValueVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return false // package-level
	}
	_, isPtr := v.Type().Underlying().(*types.Pointer)
	return !isPtr
}

// bindVar makes key a member of set id, dropping any previous
// membership.
func (w *poolWalker) bindVar(st *pcState, key vkey, id int) {
	if prev, ok := st.member[key]; ok && prev != id {
		w.dropVar(st, key)
	}
	st.member[key] = id
}

// dropVar removes key's membership; when the last reference to a live
// set is overwritten, the value was deliberately dropped (the pooled
// object falls back to the GC), which is legal for sync.Pool-style
// recycling.
func (w *poolWalker) dropVar(st *pcState, key vkey) {
	id, ok := st.member[key]
	if !ok {
		return
	}
	delete(st.member, key)
	if st.members(id) == 0 && st.status[id] == statusLive {
		st.status[id] = statusReleased
	}
}

// ---------------------------------------------------------------------------
// Expressions

// evalExpr interprets an expression, returning the id of the tracked
// set the expression's value belongs to, or -1.
func (w *poolWalker) evalExpr(st *pcState, e ast.Expr) int {
	switch e := e.(type) {
	case nil:
		return -1
	case *ast.Ident:
		obj := w.info.Uses[e]
		if obj == nil {
			obj = w.info.Defs[e]
		}
		if obj == nil {
			return -1
		}
		if id, ok := st.member[vkey{obj: obj}]; ok {
			return id
		}
		return -1
	case *ast.SelectorExpr:
		w.evalExpr(st, e.X)
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			baseObj := w.info.Uses[base]
			if baseObj == nil {
				baseObj = w.info.Defs[base]
			}
			if baseObj != nil {
				if id, ok := st.member[vkey{obj: baseObj, field: e.Sel.Name}]; ok {
					return id
				}
			}
		}
		return -1
	case *ast.ParenExpr:
		return w.evalExpr(st, e.X)
	case *ast.SliceExpr:
		w.evalExpr(st, e.Low)
		w.evalExpr(st, e.High)
		w.evalExpr(st, e.Max)
		return w.evalExpr(st, e.X)
	case *ast.TypeAssertExpr:
		return w.evalExpr(st, e.X)
	case *ast.CallExpr:
		return w.applyCall(st, e)
	case *ast.UnaryExpr:
		w.evalExpr(st, e.X)
		return -1
	case *ast.BinaryExpr:
		w.evalExpr(st, e.X)
		w.evalExpr(st, e.Y)
		return -1
	case *ast.StarExpr:
		w.evalExpr(st, e.X)
		return -1
	case *ast.IndexExpr:
		w.evalExpr(st, e.X)
		w.evalExpr(st, e.Index)
		return -1
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.evalExpr(st, elt)
		}
		return -1
	case *ast.KeyValueExpr:
		w.evalExpr(st, e.Value)
		return -1
	case *ast.FuncLit:
		// A closure built here may be the release path (handed to a
		// helper, stored for later): optimistically credit any
		// recycling calls it contains against the current state.
		w.scanClosureReleases(st, e)
		return -1
	default:
		return -1
	}
}

// applyCall interprets one call: acquisitions (pool Gets, //wsu:owns
// return), releases (pool Puts, //wsu:owns parameters and receivers),
// and the threading idiom `f(pool.Get(...))` whose result carries the
// pooled buffer onward (oracle.JudgeInto-style caller buffers).
func (w *poolWalker) applyCall(st *pcState, call *ast.CallExpr) int {
	// Builtin append keeps the identity of its first argument (growing
	// is a legal capacity upgrade for a recycled slice).
	if isBuiltin(w.info, call.Fun, "append") && len(call.Args) > 0 {
		first := w.evalExpr(st, call.Args[0])
		for _, a := range call.Args[1:] {
			w.evalExpr(st, a)
		}
		return first
	}

	argSets := make([]int, len(call.Args))
	argAcquired := make([]bool, len(call.Args))
	for i, a := range call.Args {
		argSets[i] = w.evalExpr(st, a)
		argAcquired[i] = argSets[i] >= 0 && isAcquireExpr(a)
	}

	fn := calleeOf(w.info, call)
	released := map[int]bool{}

	if fn != nil {
		if kind, isGet := poolMethod(fn); isGet != "" {
			switch isGet {
			case "Get":
				site := w.newSite(call.Pos(), kind+".Get")
				st.status[site.id] = statusLive
				return site.id
			case "Put":
				if len(argSets) > 0 && argSets[0] >= 0 {
					w.release(st, argSets[0], call.Pos())
					released[argSets[0]] = true
				}
				return -1
			}
		}
		if fact := w.pass.Dirs.Owns(funcKey(fn)); fact != nil {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil {
				if recv := sig.Recv(); recv != nil && fact.Params[recv.Name()] {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if id := w.evalExpr(st, sel.X); id >= 0 {
							w.release(st, id, call.Pos())
							released[id] = true
						}
					}
				}
				params := sig.Params()
				for i := 0; i < params.Len() && i < len(argSets); i++ {
					if fact.Params[params.At(i).Name()] && argSets[i] >= 0 {
						w.release(st, argSets[i], call.Pos())
						released[argSets[i]] = true
					}
				}
			}
			if fact.Return {
				site := w.newSite(call.Pos(), fn.Name()+" (//wsu:owns return)")
				st.status[site.id] = statusLive
				return site.id
			}
		}
	}

	// Threading: an acquisition passed straight into a call travels on
	// through the call's result (caller-buffer APIs hand the same
	// backing slice back).
	for i, a := range argSets {
		if argAcquired[i] && a >= 0 && !released[a] {
			return a
		}
	}
	return -1
}

// isAcquireExpr reports whether e is syntactically an acquisition
// (possibly sliced), so its pooled identity may thread through an
// enclosing call.
func isAcquireExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return true
	case *ast.SliceExpr:
		return isAcquireExpr(e.X)
	case *ast.TypeAssertExpr:
		return isAcquireExpr(e.X)
	}
	return false
}

// applyHandoff processes a go/defer call: a deferred or spawned
// closure that recycles tracked values releases them at the spawn
// point (covering panic paths and post-delivery background
// collection); a plain deferred call is interpreted directly.
func (w *poolWalker) applyHandoff(st *pcState, call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.scanClosureReleases(st, lit)
		return
	}
	w.applyCall(st, call)
}

// scanClosureReleases credits recycling calls inside a closure body
// against the enclosing function's tracked sets.
func (w *poolWalker) scanClosureReleases(st *pcState, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(w.info, call)
		if fn == nil {
			return true
		}
		if _, m := poolMethod(fn); m == "Put" && len(call.Args) > 0 {
			if id := w.evalExpr(st, call.Args[0]); id >= 0 {
				st.status[id] = statusReleased
			}
			return true
		}
		if fact := w.pass.Dirs.Owns(funcKey(fn)); fact != nil {
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil {
				return true
			}
			if recv := sig.Recv(); recv != nil && fact.Params[recv.Name()] {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id := w.evalExpr(st, sel.X); id >= 0 {
						st.status[id] = statusReleased
					}
				}
			}
			params := sig.Params()
			for i := 0; i < params.Len() && i < len(call.Args); i++ {
				if fact.Params[params.At(i).Name()] {
					if id := w.evalExpr(st, call.Args[i]); id >= 0 {
						st.status[id] = statusReleased
					}
				}
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Pool type recognition

// poolMethod classifies fn as a Get/Put on one of the recognized pool
// types: the repo's pool.Slice and the standard library's sync.Pool.
func poolMethod(fn *types.Func) (kind, method string) {
	if fn.Name() != "Get" && fn.Name() != "Put" {
		return "", ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	path := named.Obj().Pkg().Path()
	switch {
	case named.Obj().Name() == "Slice" && strings.HasSuffix(path, "internal/pool"):
		return "pool.Slice", fn.Name()
	case named.Obj().Name() == "Pool" && path == "sync":
		return "sync.Pool", fn.Name()
	}
	return "", ""
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	ident, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == name
}

func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isBuiltin(info, call.Fun, "panic")
}
