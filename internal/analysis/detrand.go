package analysis

import (
	"go/ast"
	"strconv"
)

// DetRand keeps the deterministic packages deterministic: faulty, sim,
// upgsim and adjudicate reproduce paper experiments from a seed, so
// any reach for ambient nondeterminism — math/rand's global state or
// wall-clock sampling via time.Now — silently invalidates a replayed
// run. Randomness comes from injected xrand generators and time from
// explicit clocks; importing math/rand (v1 or v2) or calling time.Now
// in these packages is flagged. The journal package is held to the
// same bar for a different reason: replay must be a pure function of
// the bytes on disk, so entry timestamps are caller-stamped, never
// sampled inside the codec or writer.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "deterministic packages use injected randomness and clocks",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) error {
	if !pathTail(pass.Pkg.ImportPath, "faulty", "sim", "upgsim", "adjudicate", "journal") {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"deterministic package imports %s; use an injected xrand generator", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil {
				return true
			}
			if isPkgFunc(fn, "time", "Now") {
				pass.Reportf(call.Pos(),
					"deterministic package samples the wall clock; inject the time instead")
			}
			return true
		})
	}
	return nil
}
