// Package analysis is wsuvet's invariant-checking engine: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis plus the
// five project analyzers that turn this repo's load-bearing hot-path
// conventions into machine-checked build failures.
//
// The x/tools framework itself is deliberately not imported: the module
// has no third-party dependencies and this engine needs only what the
// standard library provides (go/ast, go/types, and export data produced
// by `go list -export`, the same source of type information the go
// command feeds to vet).
//
// # Checked invariants
//
//   - poolcheck: pooled values (pool.Slice.Get, sync.Pool.Get, and
//     functions annotated //wsu:owns return) are recycled on every
//     return path or explicitly handed off (//wsu:owns), and are never
//     stored to shared state or returned from unannotated functions.
//   - boundedread: response/request bodies are read through bounded
//     readers (httpx.ReadBounded, io.LimitReader, http.MaxBytesReader);
//     raw io.ReadAll / io.Copy / decoder-on-body slurps are flagged
//     outside internal/httpx and internal/wire.
//   - ctxhygiene: request-path packages (dispatch, core, fleet) never
//     mint context.Background()/context.TODO(); deadlines must derive
//     from the consumer's request context.
//   - detrand: deterministic packages (faulty, sim, upgsim, adjudicate)
//     never reach for math/rand or wall-clock sampling; randomness and
//     time are injected (xrand, explicit clocks).
//   - noalloc: functions annotated //wsu:noalloc compile without any
//     heap allocation attributed to their bodies, verified against the
//     compiler's own escape analysis (go tool compile -m).
//
// # Annotation grammar
//
//   - "//wsu:owns return" on a function: its pooled result is owned by
//     the caller (the function is an acquire site).
//   - "//wsu:owns a b" on a function: calls transfer ownership of the
//     arguments bound to parameters (or the receiver) named a and b
//     into the callee, which must recycle or hand them off itself.
//   - "//wsu:noalloc" on a function: the escape-analysis gate above.
//   - "//wsu:allow <analyzer>[,<analyzer>] -- <reason>" suppresses
//     diagnostics of the named analyzers on the same line (or, when the
//     comment stands alone, on the following line). The reason is
//     mandatory; a missing reason is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier in diagnostics and in
	// //wsu:allow directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run checks one package, reporting findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Message describes the violated invariant.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one loaded package.
type Pass struct {
	// Analyzer is the running check.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Dirs are the module-wide //wsu: directives (ownership facts,
	// noalloc sets, suppressions) collected before any analyzer ran.
	Dirs *Directives

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.reportAt(p.Pkg.Fset.Position(pos), format, args...)
}

// reportAt records a finding at an already-resolved position (noalloc
// findings come from compiler output, not the token.FileSet).
func (p *Pass) reportAt(pos token.Position, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{PoolCheck, BoundedRead, CtxHygiene, DetRand, NoAlloc}
}

// ByName resolves an analyzer name; nil when unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// sortDiags orders diagnostics by file, line, column, then analyzer.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// funcKey identifies a function or method across packages, matching the
// object the type checker resolves at a call site against the object
// the directive collector saw at the declaration. Methods key on the
// receiver's named type; generic instances key on their origin.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// declKey builds the same key from a declaration in pkg.
func declKey(pkg *Package, decl *ast.FuncDecl) string {
	obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	return funcKey(obj)
}

// namedOf unwraps pointers and generic instances down to the named
// type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	if named != nil && named.Obj() != nil {
		return named
	}
	return nil
}

// calleeOf resolves the *types.Func a call expression invokes (methods
// included), or nil for builtins, conversions, and dynamic calls
// through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call (pkg.Fn).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pathTail reports whether the import path's last segment is one of
// names. Package-role policies (deterministic packages, request-path
// packages, transport exemptions) key on this so the testdata golden
// packages can opt in by directory name.
func pathTail(path string, names ...string) bool {
	tail := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			tail = path[i+1:]
			break
		}
	}
	for _, n := range names {
		if tail == n {
			return true
		}
	}
	return false
}
