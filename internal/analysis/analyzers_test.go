package analysis_test

import (
	"testing"

	"wsupgrade/internal/analysis"
	"wsupgrade/internal/analysis/analysistest"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, ".", "./testdata/src/pc", analysis.PoolCheck)
}

func TestBoundedRead(t *testing.T) {
	analysistest.Run(t, ".", "./testdata/src/br", analysis.BoundedRead)
}

func TestCtxHygiene(t *testing.T) {
	analysistest.Run(t, ".", "./testdata/src/dispatch", analysis.CtxHygiene)
}

func TestDetRand(t *testing.T) {
	analysistest.Run(t, ".", "./testdata/src/sim", analysis.DetRand)
}

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, ".", "./testdata/src/na", analysis.NoAlloc)
}

// TestRepoClean is the smoke test: the full suite over the whole module
// must come back empty, so `make lint` stays green.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis is slow; skipped in -short mode")
	}
	diags, err := analysis.Run("../..", []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
}
