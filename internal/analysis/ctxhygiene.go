package analysis

import (
	"go/ast"
)

// CtxHygiene guards the PR 3 deadline bug: the request-path packages
// (dispatch, core, fleet) must derive every deadline from the
// consumer's incoming request context. Minting a fresh root there —
// context.Background() or context.TODO() — detaches the dispatch from
// the caller's cancellation and responsiveness budget, so both are
// flagged, as is context.WithTimeout/WithDeadline applied directly to
// such a root. Commands (package main) and tests own their lifecycle
// and are exempt.
var CtxHygiene = &Analyzer{
	Name: "ctxhygiene",
	Doc:  "request-path packages derive contexts from the request",
	Run:  runCtxHygiene,
}

func runCtxHygiene(pass *Pass) error {
	if !pathTail(pass.Pkg.ImportPath, "dispatch", "core", "fleet") || pass.Pkg.Name == "main" {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "context", "Background"), isPkgFunc(fn, "context", "TODO"):
				pass.Reportf(call.Pos(),
					"context.%s() on the request path; derive the context from the incoming request", fn.Name())
			case isPkgFunc(fn, "context", "WithTimeout"), isPkgFunc(fn, "context", "WithDeadline"):
				if len(call.Args) >= 1 && isFreshRoot(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"context.%s rooted at a fresh context; the deadline must bound the request context", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isFreshRoot matches a direct context.Background()/TODO() argument.
func isFreshRoot(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(pass.Pkg.Info, call)
	return fn != nil && (isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO"))
}
