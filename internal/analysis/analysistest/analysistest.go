// Package analysistest runs analyzers over golden packages and checks
// their diagnostics against // want "regex" comments in the sources —
// a dependency-free analogue of x/tools' analysistest.
//
// A want comment asserts diagnostics on its own line:
//
//	io.ReadAll(r) // want "without a bound"
//	ctx() // want "context.Background" "rooted at a fresh context"
//
// Each quoted string is a regular expression matched against
// "analyzer: message". Every diagnostic must be claimed by a want on
// its line and every want must claim a diagnostic; anything unmatched
// fails the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"wsupgrade/internal/analysis"
)

var wantRe = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one quoted regex of a want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	used bool
}

// Run analyzes pattern (a package directory relative to dir) with the
// given analyzers and compares diagnostics against the package's want
// comments.
func Run(t *testing.T, dir, pattern string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	diags, err := analysis.Run(dir, []string{pattern}, analyzers)
	if err != nil {
		t.Fatalf("analysis.Run(%s): %v", pattern, err)
	}
	wants, err := collectWants(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatalf("collecting want comments: %v", err)
	}

	for _, d := range diags {
		got := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		if !claim(wants, d.Pos.Filename, d.Pos.Line, got) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, got)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.src)
		}
	}
}

// claim marks the first unclaimed expectation on file:line whose regex
// matches got.
func claim(wants []*expectation, file string, line int, got string) bool {
	for _, w := range wants {
		if w.used || w.line != line || w.file != file {
			continue
		}
		if w.re.MatchString(got) {
			w.used = true
			return true
		}
	}
	return false
}

// collectWants scans every .go file of the package directory.
func collectWants(pkgDir string) ([]*expectation, error) {
	abs, err := filepath.Abs(pkgDir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(abs, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			for _, q := range wantArgRe.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want string %s: %w", path, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", path, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re, src: pat})
			}
		}
	}
	return wants, nil
}
