// Package na is noalloc's golden package: //wsu:noalloc annotations
// checked against the compiler's escape analysis.
package na

// sum is allocation-free and annotated; no diagnostic.
//
//wsu:noalloc
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// boxed allocates inside an annotated function.
//
//wsu:noalloc
func boxed() *int {
	return new(int) // want `allocates`
}

// grows allocates deliberately on an acknowledged line.
//
//wsu:noalloc
func grows(n int) []int {
	//wsu:allow noalloc -- testdata: deliberate cold-path allocation
	return make([]int, n)
}

// helper allocates but carries no annotation; no diagnostic.
func helper(n int) []int {
	return make([]int, n)
}
