// Package dispatch is ctxhygiene's golden package; the directory name
// opts it into the request-path policy.
package dispatch

import (
	"context"
	"time"
)

// fresh mints a root context on the request path.
func fresh() context.Context {
	return context.Background() // want `context.Background\(\) on the request path`
}

// todo mints the placeholder root.
func todo() context.Context {
	return context.TODO() // want `context.TODO\(\) on the request path`
}

// detached roots a deadline in a fresh context.
func detached() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), time.Second) // want `rooted at a fresh context` `context.Background\(\) on the request path`
}

// derived bounds the incoming request context; this is the hygienic
// form.
func derived(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second)
}

// allowed mints a root with a justified suppression.
func allowed() context.Context {
	//wsu:allow ctxhygiene -- testdata: owned background loop
	return context.Background()
}
