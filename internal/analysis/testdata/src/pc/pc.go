// Package pc is poolcheck's golden package: each function exercises
// one acquisition/release pattern, with // want comments marking the
// expected diagnostics.
package pc

import (
	"errors"
	"sync"

	"wsupgrade/internal/pool"
)

var bufs pool.Slice[byte]

var boxes = sync.Pool{New: func() interface{} { return new(box) }}

type box struct{ n int }

type record struct{ scratch []byte }

var sink []byte

var errFail = errors.New("fail")

// leakOnError forgets its buffer on the early return.
func leakOnError(fail bool) error {
	b := bufs.Get(8) // want `not recycled on every path`
	if fail {
		return errFail
	}
	bufs.Put(b)
	return nil
}

// balanced recycles on every path through a deferred closure.
func balanced(fail bool) error {
	b := bufs.Get(8)
	defer func() { bufs.Put(b) }()
	if fail {
		return errFail
	}
	return nil
}

// escapes returns a pooled value without an owns annotation.
func escapes() []byte {
	b := bufs.Get(8)
	return b // want `not annotated`
}

// acquire hands its pooled result to the caller.
//
//wsu:owns return
func acquire() []byte {
	return bufs.Get(8)
}

// free takes ownership of b and recycles it.
//
//wsu:owns b
func free(b []byte) {
	bufs.Put(b)
}

// handoff is clean: acquire through the annotated helper, release
// through the annotated sink.
func handoff() {
	b := acquire()
	free(b)
}

// forgets drops the value obtained from the annotated acquirer.
func forgets() {
	b := acquire() // want `not recycled on every path`
	_ = len(b)
}

// keeps stores a pooled value to a global.
func keeps() {
	b := bufs.Get(8)
	sink = b // want `stored to shared state`
}

// retains stores a pooled value in a struct behind a pointer.
func retains(r *record) {
	r.scratch = bufs.Get(8) // want `stored to shared state`
}

// localStruct keeps a pooled slice in a local composite value and
// recycles it through the field selector.
func localStruct() {
	r := record{scratch: bufs.Get(8)}
	r.scratch = append(r.scratch, 1)
	bufs.Put(r.scratch)
}

// pooledBox recycles only when the pool actually yielded a box.
func pooledBox() int {
	if b, ok := boxes.Get().(*box); ok {
		n := b.n
		boxes.Put(b)
		return n
	}
	return 0
}

// missedBox forgets the put on the hit path.
func missedBox() int {
	if b, ok := boxes.Get().(*box); ok { // want `not recycled on every path`
		return b.n
	}
	return 0
}

// doublePut recycles twice.
func doublePut() {
	b := bufs.Get(8)
	bufs.Put(b)
	bufs.Put(b) // want `recycled twice`
}

// dropped abandons its buffer deliberately, with a justified allow.
func dropped() {
	//wsu:allow poolcheck -- testdata: deliberate drop to the GC
	b := bufs.Get(8)
	_ = len(b)
}

// background hands the buffer to a goroutine that frees it.
func background() {
	b := acquire()
	go func() {
		free(b)
	}()
}

// badOwner takes ownership and forgets.
//
//wsu:owns b
func badOwner(b []byte) { // want `owned parameter b is not recycled`
	_ = len(b)
}

// fill copies into dst and returns it, like the JudgeInto oracles.
func fill(dst []byte) []byte {
	return append(dst, 1)
}

// threaded recycles the buffer that traveled through fill.
func threaded() {
	out := fill(bufs.Get(4))
	bufs.Put(out)
}

// loopLeak reacquires every iteration and abandons on break.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		b := bufs.Get(4) // want `not recycled on every path`
		if i == 3 {
			break
		}
		bufs.Put(b)
	}
}

// publish sends a pooled value away.
func publish(ch chan []byte) {
	b := bufs.Get(4)
	ch <- b // want `sent to a channel`
}
