// Package br is boundedread's golden package.
package br

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
)

type payload struct {
	N int `json:"n"`
}

// slurp reads a response body without any bound.
func slurp(resp *http.Response) ([]byte, error) {
	return io.ReadAll(resp.Body) // want `without a bound`
}

// slurpRequest reads a request body without any bound.
func slurpRequest(req *http.Request) ([]byte, error) {
	return io.ReadAll(req.Body) // want `without a bound`
}

// bounded reads through io.LimitReader.
func bounded(resp *http.Response) ([]byte, error) {
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// inMemory reads a non-body reader; no bound required.
func inMemory(data []byte) ([]byte, error) {
	return io.ReadAll(bytes.NewReader(data))
}

// copyUnbounded streams a body into a growable buffer.
func copyUnbounded(resp *http.Response) error {
	var buf bytes.Buffer
	_, err := io.Copy(&buf, resp.Body) // want `unbounded in-memory buffer`
	return err
}

// copyBounded limits the source first.
func copyBounded(resp *http.Response) error {
	var buf bytes.Buffer
	_, err := io.Copy(&buf, io.LimitReader(resp.Body, 1<<20))
	return err
}

// copyToFile streams to a non-growable sink; the file is the bound.
func copyToFile(f *os.File, resp *http.Response) error {
	_, err := io.Copy(f, resp.Body)
	return err
}

// decodeStream decodes straight off the body.
func decodeStream(resp *http.Response) (payload, error) {
	var p payload
	err := json.NewDecoder(resp.Body).Decode(&p) // want `decodes straight from a body stream`
	return p, err
}

// decodeBytes decodes from an already-bounded buffer.
func decodeBytes(data []byte) (payload, error) {
	var p payload
	err := json.NewDecoder(bytes.NewReader(data)).Decode(&p)
	return p, err
}

// allowed slurps with a justified suppression.
func allowed(resp *http.Response) ([]byte, error) {
	//wsu:allow boundedread -- testdata: trusted local endpoint
	return io.ReadAll(resp.Body)
}

// badAllow's suppression has no justification, so the directive itself
// is a diagnostic and the finding is not suppressed.
func badAllow(resp *http.Response) ([]byte, error) {
	return io.ReadAll(resp.Body) //wsu:allow boundedread // want `without a bound` `needs a justification`
}
