// Package sim is detrand's golden package; the directory name opts it
// into the deterministic-package policy.
package sim

import (
	"math/rand" // want `imports math/rand`
	"time"
)

// roll uses the ambient generator; the import diagnostic above covers
// every use in the file.
func roll() int { return rand.Intn(6) }

// now samples the wall clock.
func now() time.Time {
	return time.Now() // want `samples the wall clock`
}

// elapsed derives time from an injected instant; this is the
// deterministic form.
func elapsed(now time.Time, since time.Time) time.Duration {
	return now.Sub(since)
}

// allowedNow samples the wall clock with a justified suppression.
func allowedNow() time.Time {
	//wsu:allow detrand -- testdata: wall-clock stamp outside the replayed path
	return time.Now()
}
