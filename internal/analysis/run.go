package analysis

// Run loads the packages matching patterns under dir, collects the
// //wsu: directives, runs every analyzer over every package, applies
// //wsu:allow suppressions, and returns the surviving diagnostics
// sorted by position. Directive-grammar problems are appended
// unconditionally: a malformed suppression must not silently widen
// what it suppresses.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	dirs := CollectDirectives(pkgs)

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Dirs: dirs, diags: &raw}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if dirs.Allowed(d.Analyzer, d.Pos.Filename, d.Pos.Line) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, dirs.Problems()...)
	sortDiags(out)
	return out, nil
}
