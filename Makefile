# Build/verify entry points. The bench target is the allocation
# regression gate CI runs: it measures the in-process (network-free)
# benchmarks 5 times, snapshots each run as BENCH_<n>.json, and fails
# when allocs/op on a gated hot-path benchmark regresses >10% over the
# checked-in bench_baseline.json. Refresh the baseline with
# `make bench-baseline` after an intentional change and commit it.

GO        ?= go
BENCH     ?= EngineInProcess|FleetInProcess|OracleJudge|MonitorNote
COUNT     ?= 5
BENCHTIME ?= 1000x
GATED      = EngineInProcess/old-only-fastpath,EngineInProcess/old-only-fastpath-journaled,EngineInProcess/json-fastpath,EngineInProcess/parallel,FleetInProcess/fleet-routed,MonitorNote/interned,OracleJudge/fault-only,OracleJudge/header-truth,OracleJudge/reference(1.0),OracleJudge/back-to-back,OracleJudge/omission
# Fast-path entries additionally gated on best-of-N ns/op. The 25%
# threshold is deliberately generous (shared runners are noisy); it
# exists to catch a fast path falling off a cliff, not a 5% wobble.
NS_GATED   = EngineInProcess/old-only-fastpath,EngineInProcess/old-only-fastpath-journaled,EngineInProcess/new-only-fastpath,EngineInProcess/json-fastpath

# The soak target runs the chaos-scenario suite end to end under the
# race detector: a real fleet over TCP with fault-injected releases,
# closing with the duration-based soak scenario (goroutine/heap/RSS
# bounds). SOAK_DURATION scales the soak scenario; CI uses a short
# duration on PRs and a longer one on the schedule.
SOAK_DURATION ?= 20s
SOAK_OUT      ?= .

.PHONY: test vet lint bench bench-run bench-baseline clean-bench soak scaling

test:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test ./...

# lint is the required CI gate: formatting, go vet, and the project's
# invariant analyzers (poolcheck, boundedread, ctxhygiene, detrand,
# noalloc — see the Invariants section of DESIGN.md and cmd/wsuvet).
lint:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/wsuvet ./...

soak:
	$(GO) run -race ./cmd/loadgen -scenario corrupt-never-wins -out $(SOAK_OUT)/soak-corrupt.json
	$(GO) run -race ./cmd/loadgen -scenario corrupt-never-wins-json -out $(SOAK_OUT)/soak-corrupt-json.json
	$(GO) run -race ./cmd/loadgen -scenario omission-convergence -out $(SOAK_OUT)/soak-omission.json
	$(GO) run -race ./cmd/loadgen -scenario mixed-fault -out $(SOAK_OUT)/soak-mixed.json
	$(GO) run -race ./cmd/loadgen -scenario crash-restart -out $(SOAK_OUT)/soak-crash.json
	$(GO) run -race ./cmd/loadgen -scenario crash-recovery -out $(SOAK_OUT)/soak-crash-recovery.json
	$(GO) run -race ./cmd/loadgen -scenario soak -duration $(SOAK_DURATION) -out $(SOAK_OUT)/soak-report.json

# scaling regenerates the committed GOMAXPROCS scaling curve
# (bench_scaling.json): RPS and p99 of the mediation path at 1, 2, 4, …
# NumCPU cores against a self-deployed faultless unit.
scaling:
	$(GO) run ./cmd/loadgen -scaling -out bench_scaling.json

vet:
	$(GO) vet ./...

bench-run: clean-bench
	$(GO) test -run='^$$' -bench='$(BENCH)' -benchtime=$(BENCHTIME) -benchmem -count=$(COUNT) . | tee bench.out
	$(GO) run ./cmd/benchgate -parse bench.out -out .

bench: bench-run
	$(GO) run ./cmd/benchgate -check -baseline bench_baseline.json -results . -keys '$(GATED)' -max-regress 0.10 -ns-keys '$(NS_GATED)' -max-ns-regress 0.25

bench-baseline: bench-run
	$(GO) run ./cmd/benchgate -update -baseline bench_baseline.json -results .

clean-bench:
	rm -f bench.out BENCH_*.json
