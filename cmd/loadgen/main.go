// Command loadgen drives a deployed upgrade engine or fleet unit over
// TCP and emits a machine-readable JSON load report, or runs a named
// chaos scenario (fault-injected fleet + load + assertions) and exits
// non-zero when the scenario's dependability claims do not hold.
//
// Examples:
//
//	# closed loop: 4 workers, 2000 demands
//	loadgen -url http://localhost:8080/flights/ -n 2000 -c 4
//
//	# open loop: 500 demands/s for 30s, coordinated-omission-resistant
//	loadgen -url http://localhost:8080/flights/ -mode open -rps 500 -duration 30s
//
//	# chaos scenario for CI
//	loadgen -scenario corrupt-never-wins -out report.json
//
//	# GOMAXPROCS scaling sweep (self-deploys a faultless unit)
//	loadgen -scaling -out bench_scaling.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wsupgrade/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// urlList collects repeated -url flags.
type urlList []string

func (u *urlList) String() string     { return strings.Join(*u, ",") }
func (u *urlList) Set(v string) error { *u = append(*u, v); return nil }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var urls urlList
	fs.Var(&urls, "url", "target endpoint (repeatable; workers round-robin)")
	operation := fs.String("op", "add", "demo operation to drive: add or operation1")
	protocol := fs.String("protocol", "soap", "gateway wire protocol: soap or json")
	mode := fs.String("mode", "closed", "drive mode: closed or open")
	concurrency := fs.Int("c", 0, "workers (closed) / max in-flight (open); 0 = default")
	rps := fs.Float64("rps", 0, "open-loop target arrival rate")
	requests := fs.Int("n", 0, "stop after this many demands")
	duration := fs.Duration("duration", 0, "stop after this long")
	timeout := fs.Duration("timeout", 10*time.Second, "per-demand deadline")
	seed := fs.Uint64("seed", 1, "seed for request parameters and fault injection")
	out := fs.String("out", "", "write the JSON report here instead of stdout")
	scenario := fs.String("scenario", "", "run a named chaos scenario instead of raw load (see -list)")
	scaling := fs.Bool("scaling", false, "run the GOMAXPROCS scaling sweep against a self-deployed unit")
	list := fs.Bool("list", false, "list scenarios and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range loadgen.Scenarios() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}

	dest := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dest = f
	}

	if *scaling {
		rep, err := loadgen.RunScaling(ctx, loadgen.ScalingOptions{
			Concurrency: *concurrency,
			PerPoint:    *duration,
			Seed:        *seed,
			Log:         stderr,
		})
		if err != nil {
			return err
		}
		return rep.WriteJSON(dest)
	}

	if *scenario != "" {
		res, err := loadgen.RunScenario(ctx, *scenario, loadgen.ScenarioOptions{
			Requests:    *requests,
			Duration:    *duration,
			Concurrency: *concurrency,
			Seed:        *seed,
			Log:         stderr,
		})
		if res.Scenario != "" {
			if werr := res.WriteJSON(dest); werr != nil && err == nil {
				err = werr
			}
		}
		return err
	}

	if len(urls) == 0 {
		return errors.New("need -url (or -scenario)")
	}
	if *mode != "closed" && *mode != "open" {
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	rep, err := loadgen.Run(ctx, loadgen.Options{
		URLs:        urls,
		Operation:   *operation,
		Protocol:    *protocol,
		OpenLoop:    *mode == "open",
		Concurrency: *concurrency,
		RPS:         *rps,
		Requests:    *requests,
		Duration:    *duration,
		Timeout:     *timeout,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	return rep.WriteJSON(dest)
}
