package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/core"
	"wsupgrade/internal/loadgen"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/service"
	"wsupgrade/internal/stats"
)

// bootEngine serves a two-release upgrade engine on an ephemeral port.
func bootEngine(t *testing.T) string {
	t.Helper()
	prior := stats.ScaledBeta{Alpha: 1, Beta: 3, Upper: 0.3}
	endpoints := make([]core.Endpoint, 0, 2)
	for _, version := range []string{"1.0", "1.1"} {
		rel, err := service.New(service.DemoContract(version), service.DemoBehaviours(), service.FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: rel.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		endpoints = append(endpoints, core.Endpoint{Version: version, URL: "http://" + ln.Addr().String()})
	}
	eng, err := core.New(core.Config{
		Releases:     endpoints,
		InitialPhase: core.PhaseObservation,
		Oracle:       oracle.Reference{Release: "1.0"},
		Inference: &bayes.WhiteBoxConfig{
			PriorA: prior, PriorB: prior,
			GridA: 30, GridB: 30, GridC: 8, GridAB: 36,
		},
		ConfidenceTarget: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: eng.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	// Drain handlers before the engine behind them closes (Close cuts
	// connections without waiting for in-flight dispatches).
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if srv.Shutdown(ctx) != nil {
			_ = srv.Close()
		}
	})
	return "http://" + ln.Addr().String() + "/"
}

func TestRunClosedLoopCLI(t *testing.T) {
	url := bootEngine(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-url", url, "-n", "40", "-c", "2", "-seed", "4"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if rep.Requests != 40 || rep.Verdicts[loadgen.VerdictOK] != 40 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.LatencyMS.P99 <= 0 {
		t.Fatalf("missing percentiles: %+v", rep.LatencyMS)
	}
}

func TestRunScenarioCLIWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(),
		[]string{"-scenario", "corrupt-never-wins", "-n", "60", "-c", "2", "-out", out},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("scenario run: %v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res loadgen.ScenarioResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("report file is not JSON: %v", err)
	}
	if !res.Pass || res.Scenario != "corrupt-never-wins" {
		t.Fatalf("scenario result: %+v", res)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var discard bytes.Buffer
	if err := run(context.Background(), []string{"-n", "1"}, &discard, io.Discard); err == nil {
		t.Fatal("missing -url accepted")
	}
	if err := run(context.Background(), []string{"-url", "http://x", "-n", "1", "-mode", "sideways"}, &discard, io.Discard); err == nil {
		t.Fatal("bad -mode accepted")
	}
	err := run(context.Background(), []string{"-scenario", "nope"}, &discard, io.Discard)
	if !errors.Is(err, loadgen.ErrUnknownScenario) {
		t.Fatalf("unknown scenario err = %v", err)
	}
}

func TestRunListScenarios(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := strings.Fields(stdout.String())
	if len(got) < 4 || got[0] != "corrupt-never-wins" {
		t.Fatalf("scenario list: %v", got)
	}
}
