// Command repro regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index):
//
//	repro -table 2      Table 2  (duration of managed upgrade)
//	repro -figure 7     Figure 7 (Scenario 1 percentile trajectories)
//	repro -figure 8     Figure 8 (Scenario 2 percentile trajectories)
//	repro -table 5      Table 5  (simulation, correlated releases)
//	repro -table 6      Table 6  (simulation, independent releases)
//	repro -ablation modes  Operating-mode ablation (§4.2)
//	repro -all          Everything above, in order.
//
// Output is plain text. Seeds default to fixed values so runs are
// reproducible; change -seed to explore variability.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		table    = fs.Int("table", 0, "regenerate a table (2, 5 or 6)")
		figure   = fs.Int("figure", 0, "regenerate a figure (7 or 8)")
		ablation = fs.String("ablation", "", "run an ablation (\"modes\")")
		all      = fs.Bool("all", false, "regenerate everything")
		seed     = fs.Uint64("seed", 42, "random seed")
		requests = fs.Int("requests", 10000, "requests per simulation block (tables 5-6)")
		step     = fs.Int("step", 500, "inference checkpoint granularity (table 2, figures)")
		demands  = fs.Int("demands", 0, "override the sweep length (0 = paper's 50,000)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *table == 0 && *figure == 0 && *ablation == "" {
		*all = true
	}

	grid := repro.GridConfig{A: 80, B: 80, C: 24, AB: 120}

	runStudy := func(s relmodel.Scenario, step, max int) (*repro.StudyResult, error) {
		return repro.RunSwitchStudy(repro.StudyConfig{
			Scenario:   s,
			Step:       step,
			MaxDemands: max,
			Grid:       grid,
			Seed:       *seed,
		})
	}

	var s1, s2 *repro.StudyResult
	needStudies := *all || *table == 2 || *figure == 7 || *figure == 8
	if needStudies {
		var err error
		fmt.Fprintln(out, "# Running the Bayesian switch studies (Scenarios 1 and 2)...")
		s1, err = runStudy(relmodel.Scenario1(), *step, *demands)
		if err != nil {
			return err
		}
		s2max := *demands
		if s2max == 0 {
			s2max = 15000 // the paper's Scenario 2 plots stop at 10,000
		}
		s2, err = runStudy(relmodel.Scenario2(), min(*step, 100), s2max)
		if err != nil {
			return err
		}
	}

	if *all || *table == 2 {
		fmt.Fprintln(out)
		fmt.Fprint(out, repro.FormatTable2(s1, s2))
	}
	if *all || *figure == 7 {
		fmt.Fprintln(out)
		fmt.Fprint(out, repro.FormatTrajectory(s1))
	}
	if *all || *figure == 8 {
		fmt.Fprintln(out)
		fmt.Fprint(out, repro.FormatTrajectory(s2))
	}
	if *all || *table == 5 {
		rows, err := repro.RunAvailabilityStudy(repro.AvailabilityConfig{
			Correlated: true, Requests: *requests, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, repro.FormatAvailability(
			"Table 5: simulation results, correlated release behaviour", rows))
	}
	if *all || *table == 6 {
		rows, err := repro.RunAvailabilityStudy(repro.AvailabilityConfig{
			Correlated: false, Requests: *requests, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, repro.FormatAvailability(
			"Table 6: simulation results, independent release behaviour", rows))
	}
	if *all || *ablation == "modes" {
		rows, err := repro.RunModeAblation(1, 2.0, *requests, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, repro.FormatModeAblation(rows))
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
