package main

import (
	"strings"
	"testing"
)

func TestRunTable5Small(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "5", "-requests", "300", "-seed", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Table 5", "MET", "NRDT", "System"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(text, "Table 2") {
		t.Error("-table 5 also produced table 2")
	}
}

func TestRunTable6Small(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "6", "-requests", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "independent") {
		t.Error("table 6 output missing regime label")
	}
}

func TestRunModeAblation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-ablation", "modes", "-requests", "200"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sequential") {
		t.Error("ablation output missing modes")
	}
}

func TestRunTable2AndFiguresSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("inference sweep")
	}
	var out strings.Builder
	err := run([]string{"-table", "2", "-step", "1000", "-demands", "3000", "-seed", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Table 2", "scenario-1", "scenario-2", "criterion-3"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
