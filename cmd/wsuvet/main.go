// Command wsuvet runs the project's invariant analyzers (poolcheck,
// boundedread, ctxhygiene, detrand, noalloc) over the packages
// matching its arguments and exits nonzero on any finding.
//
// Usage:
//
//	wsuvet [-c name,name] [-list] [patterns...]
//
// Patterns default to ./... relative to the current directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wsupgrade/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("wsuvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	only := flags.String("c", "", "comma-separated analyzer names to run (default: all)")
	if err := flags.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "wsuvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "wsuvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "wsuvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "wsuvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
