package main

import (
	"strings"
	"testing"
)

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"poolcheck", "boundedread", "ctxhygiene", "detrand", "noalloc"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsAUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-c", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-c nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errOut.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-c", "detrand,ctxhygiene", "wsupgrade/internal/analysis"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}
