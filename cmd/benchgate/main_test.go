package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: wsupgrade
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineInProcess/parallel         	     500	     28089 ns/op	   10243 B/op	      34 allocs/op
BenchmarkEngineInProcess/old-only-fastpath         	     500	     10376 ns/op	    8183 B/op	      26 allocs/op
BenchmarkEngineInProcess/parallel-8         	     500	     27000 ns/op	   10000 B/op	      33 allocs/op
BenchmarkEngineInProcess/old-only-fastpath-8       	     500	      9900 ns/op	    8100 B/op	      27 allocs/op
BenchmarkAblationModes/reliability 	 100 	 120000 ns/op	         2.9 execs/req	        56.1 sysMET-s	  5000 B/op	     120 allocs/op
PASS
ok  	wsupgrade	0.232s
`

func TestParseRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(path, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	runs, err := parseRuns(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2 (repeated benchmarks split per run)", len(runs))
	}
	// The -8 GOMAXPROCS suffix must be stripped so runs compare across
	// machines.
	m, ok := runs[0]["EngineInProcess/parallel"]
	if !ok {
		t.Fatalf("missing EngineInProcess/parallel in %v", runs[0])
	}
	if m.AllocsPerOp != 34 || m.BytesPerOp != 10243 {
		t.Fatalf("metrics = %+v", m)
	}
	if runs[1]["EngineInProcess/old-only-fastpath"].AllocsPerOp != 27 {
		t.Fatalf("second run = %+v", runs[1])
	}
	// Extra ReportMetric columns must not break the line match.
	if runs[0]["AblationModes/reliability"].AllocsPerOp != 120 {
		t.Fatalf("ablation line = %+v", runs[0])
	}
}

func TestBestFold(t *testing.T) {
	runs := []map[string]Metrics{
		{"a": {NsPerOp: 100, AllocsPerOp: 30}},
		{"a": {NsPerOp: 90, AllocsPerOp: 28}},
		{"a": {NsPerOp: 200, AllocsPerOp: 28}},
	}
	b := best(runs)
	if b["a"].AllocsPerOp != 28 || b["a"].NsPerOp != 90 {
		t.Fatalf("best = %+v", b["a"])
	}
}

func TestCheckGate(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	baseline := writeFile("bench_baseline.json", `{"fast": {"ns_op": 100, "b_op": 800, "allocs_op": 20}}`)

	// Within the 10% budget: 22 allocs vs baseline 20.
	writeFile("BENCH_1.json", `{"fast": {"ns_op": 120, "b_op": 900, "allocs_op": 22}}`)
	if err := check(baseline, dir, "fast", 0.10, "", 0.25); err != nil {
		t.Fatalf("within-budget check failed: %v", err)
	}
	// Over budget: 23 allocs.
	writeFile("BENCH_1.json", `{"fast": {"ns_op": 120, "b_op": 900, "allocs_op": 23}}`)
	err := check(baseline, dir, "fast", 0.10, "", 0.25)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("over-budget check: err = %v", err)
	}
	// A gated benchmark missing from the results must fail, not pass
	// silently.
	if err := check(baseline, dir, "fast,ghost", 0.10, "", 0.25); err == nil {
		t.Fatal("missing gated benchmark passed")
	}
}

func TestCheckNsGate(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	baseline := writeFile("bench_baseline.json", `{"fast": {"ns_op": 100, "b_op": 800, "allocs_op": 0}}`)

	// The ns gate uses the minimum across runs: 120 is within the 25%
	// budget even though another run wobbled to 200.
	writeFile("BENCH_1.json", `{"fast": {"ns_op": 200, "b_op": 800, "allocs_op": 0}}`)
	writeFile("BENCH_2.json", `{"fast": {"ns_op": 120, "b_op": 800, "allocs_op": 0}}`)
	if err := check(baseline, dir, "fast", 0.10, "fast", 0.25); err != nil {
		t.Fatalf("within-budget ns check failed: %v", err)
	}
	// Every run over the limit: the fast path fell off a cliff.
	writeFile("BENCH_2.json", `{"fast": {"ns_op": 180, "b_op": 800, "allocs_op": 0}}`)
	err := check(baseline, dir, "fast", 0.10, "fast", 0.25)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("over-budget ns check: err = %v", err)
	}
	// Empty -ns-keys disables the gate entirely.
	if err := check(baseline, dir, "fast", 0.10, "", 0.25); err != nil {
		t.Fatalf("disabled ns gate failed: %v", err)
	}
}
