// Command benchgate is the benchmark-regression harness: it parses `go
// test -bench -benchmem -count=N` output into per-run JSON snapshots
// (BENCH_<n>.json, benchmark name → ns/op, B/op, allocs/op) and gates
// allocs/op against a checked-in baseline.
//
// Parse a bench run into snapshots:
//
//	go test -run='^$' -bench=. -benchmem -count=5 . | tee bench.out
//	benchgate -parse bench.out -out .
//
// Gate the snapshots against the baseline (fails with exit 1 when any
// gated benchmark's best-of-N allocs/op regresses more than -max-regress
// over the baseline):
//
//	benchgate -check -baseline bench_baseline.json -results . \
//	    -keys 'EngineInProcess/old-only-fastpath,EngineInProcess/parallel,FleetInProcess/fleet-routed'
//
// Refresh the baseline from the current snapshots:
//
//	benchgate -update -baseline bench_baseline.json -results .
//
// Comparison uses the best (minimum) allocs/op across the N runs:
// allocation counts are deterministic modulo pool warm-up and GC timing,
// so the minimum is the true cost and the one safe to gate on a noisy
// CI box. ns/op is recorded for trend reading and, by default, never
// gated — wall clock on shared runners is not reproducible. For
// fast-path entries whose regressions matter, -ns-keys opts specific
// benchmarks into a ns/op gate with a deliberately generous threshold
// (-max-ns-regress, default 25%): wide enough to absorb runner noise,
// tight enough to catch a fast path falling off a cliff. The ns gate
// compares the minimum ns/op across the N runs — the least-noisy
// statistic a shared box offers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurement in one run.
type Metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// benchLine matches one `-benchmem` result line. The trailing -N
// GOMAXPROCS suffix is stripped from the name so snapshots compare
// across differently sized machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ [^\s]+)*?\s+(\d+) B/op\s+(\d+) allocs/op`)

func parseRuns(path string) ([]map[string]Metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var runs []map[string]Metrics
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, _ := strconv.ParseFloat(m[2], 64)
		bo, _ := strconv.ParseInt(m[3], 10, 64)
		ao, _ := strconv.ParseInt(m[4], 10, 64)
		// With -count=N each benchmark repeats; occurrence i lands in
		// runs[i].
		idx := 0
		for idx < len(runs) {
			if _, seen := runs[idx][name]; !seen {
				break
			}
			idx++
		}
		if idx == len(runs) {
			runs = append(runs, map[string]Metrics{})
		}
		runs[idx][name] = Metrics{NsPerOp: ns, BytesPerOp: bo, AllocsPerOp: ao}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("no -benchmem result lines in %s", path)
	}
	return runs, nil
}

func writeRuns(dir string, runs []map[string]Metrics) error {
	for i, run := range runs {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", i+1))
		data, err := json.MarshalIndent(run, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", path, len(run))
	}
	return nil
}

func readRuns(dir string) ([]map[string]Metrics, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var runs []map[string]Metrics
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		run := map[string]Metrics{}
		if err := json.Unmarshal(data, &run); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		runs = append(runs, run)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json snapshots in %s", dir)
	}
	return runs, nil
}

// best folds N runs into each benchmark's best measurement (minimum
// allocs/op; ns/op and B/op from that same run).
func best(runs []map[string]Metrics) map[string]Metrics {
	out := map[string]Metrics{}
	for _, run := range runs {
		for name, m := range run {
			cur, ok := out[name]
			if !ok || m.AllocsPerOp < cur.AllocsPerOp ||
				(m.AllocsPerOp == cur.AllocsPerOp && m.NsPerOp < cur.NsPerOp) {
				out[name] = m
			}
		}
	}
	return out
}

// minNs returns each benchmark's minimum ns/op across the N runs.
func minNs(runs []map[string]Metrics) map[string]float64 {
	out := map[string]float64{}
	for _, run := range runs {
		for name, m := range run {
			if cur, ok := out[name]; !ok || m.NsPerOp < cur {
				out[name] = m.NsPerOp
			}
		}
	}
	return out
}

// splitKeys parses a comma-separated key list, dropping empties.
func splitKeys(keys string) []string {
	var out []string
	for _, key := range strings.Split(keys, ",") {
		if key = strings.TrimSpace(key); key != "" {
			out = append(out, key)
		}
	}
	return out
}

func check(baselinePath, resultsDir, keys string, maxRegress float64, nsKeys string, maxNsRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	baseline := map[string]Metrics{}
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	runs, err := readRuns(resultsDir)
	if err != nil {
		return err
	}
	current := best(runs)

	failed := false
	for _, key := range splitKeys(keys) {
		base, ok := baseline[key]
		if !ok {
			fmt.Printf("benchgate: FAIL %-45s not in baseline\n", key)
			failed = true
			continue
		}
		cur, ok := current[key]
		if !ok {
			fmt.Printf("benchgate: FAIL %-45s not in current results\n", key)
			failed = true
			continue
		}
		limit := int64(float64(base.AllocsPerOp) * (1 + maxRegress))
		status := "ok  "
		if cur.AllocsPerOp > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %s %-45s allocs/op %4d (baseline %4d, limit %4d)  ns/op %.0f (baseline %.0f)\n",
			status, key, cur.AllocsPerOp, base.AllocsPerOp, limit, cur.NsPerOp, base.NsPerOp)
	}

	curNs := minNs(runs)
	for _, key := range splitKeys(nsKeys) {
		base, ok := baseline[key]
		if !ok {
			fmt.Printf("benchgate: FAIL %-45s not in baseline (ns gate)\n", key)
			failed = true
			continue
		}
		ns, ok := curNs[key]
		if !ok {
			fmt.Printf("benchgate: FAIL %-45s not in current results (ns gate)\n", key)
			failed = true
			continue
		}
		limit := base.NsPerOp * (1 + maxNsRegress)
		status := "ok  "
		if ns > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %s %-45s ns/op %8.0f (baseline %8.0f, limit %8.0f)\n",
			status, key, ns, base.NsPerOp, limit)
	}

	// Non-gated benchmarks are reported for trend reading only.
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.Contains(keys, name) {
			continue
		}
		if base, ok := baseline[name]; ok {
			fmt.Printf("benchgate: info %-45s allocs/op %4d (baseline %4d)\n",
				name, current[name].AllocsPerOp, base.AllocsPerOp)
		}
	}
	if failed {
		return fmt.Errorf("gated benchmarks regressed over %s", baselinePath)
	}
	return nil
}

func update(baselinePath, resultsDir string) error {
	runs, err := readRuns(resultsDir)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(best(runs), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchgate: baseline %s updated\n", baselinePath)
	return nil
}

func main() {
	var (
		parse        = flag.String("parse", "", "parse `go test -bench` output file into BENCH_<n>.json snapshots")
		out          = flag.String("out", ".", "directory for BENCH_<n>.json snapshots")
		doCheck      = flag.Bool("check", false, "gate BENCH_*.json snapshots against the baseline")
		doUpdate     = flag.Bool("update", false, "rewrite the baseline from BENCH_*.json snapshots")
		baseline     = flag.String("baseline", "bench_baseline.json", "baseline file")
		results      = flag.String("results", ".", "directory holding BENCH_*.json snapshots")
		keys         = flag.String("keys", "EngineInProcess/old-only-fastpath,EngineInProcess/parallel,FleetInProcess/fleet-routed", "comma-separated benchmark names gated on allocs/op")
		maxRegress   = flag.Float64("max-regress", 0.10, "allowed fractional allocs/op regression")
		nsKeys       = flag.String("ns-keys", "", "comma-separated benchmark names additionally gated on best-of-N ns/op (empty disables)")
		maxNsRegress = flag.Float64("max-ns-regress", 0.25, "allowed fractional ns/op regression for -ns-keys entries")
	)
	flag.Parse()

	run := func() error {
		switch {
		case *parse != "":
			runs, err := parseRuns(*parse)
			if err != nil {
				return err
			}
			return writeRuns(*out, runs)
		case *doCheck:
			return check(*baseline, *results, *keys, *maxRegress, *nsKeys, *maxNsRegress)
		case *doUpdate:
			return update(*baseline, *results)
		default:
			return fmt.Errorf("one of -parse, -check or -update is required")
		}
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
