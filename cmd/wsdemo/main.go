// Command wsdemo serves one release of the demo Web Service (the paper's
// §6.2 example contract: operation1 + add) with an injectable fault and
// latency profile, standing in for a real third-party release:
//
//	wsdemo -addr :8081 -version 1.0                 # dependable release
//	wsdemo -addr :8082 -version 1.1 -ner 0.05       # buggy new release
//	wsdemo -addr :8082 -version 1.1 -er 0.1 -latency 50ms
//
// Optionally the release publishes itself to a registry:
//
//	wsdemo -addr :8081 -version 1.0 -registry http://localhost:8070 \
//	       -public http://localhost:8081
//
// The service exposes SOAP at "/", its WSDL at "/wsdl", and liveness at
// "/healthz". Every response carries the release version header and a
// ground-truth injection marker usable by test oracles.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"wsupgrade/internal/registry"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wsdemo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wsdemo", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8081", "listen address")
		version = fs.String("version", "1.0", "release version")
		er      = fs.Float64("er", 0, "probability of an evident failure per demand")
		ner     = fs.Float64("ner", 0, "probability of a non-evident failure per demand")
		latency = fs.Duration("latency", 0, "mean injected latency (exponential)")
		seed    = fs.Uint64("seed", 1, "fault-injection seed")
		regURL  = fs.String("registry", "", "registry base URL to publish to (optional)")
		public  = fs.String("public", "", "public URL of this release (for registry publication)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *er+*ner > 1 {
		return fmt.Errorf("er+ner = %v exceeds 1", *er+*ner)
	}
	plan := service.FaultPlan{
		Profile:     relmodel.Profile{CR: 1 - *er - *ner, ER: *er, NER: *ner},
		MeanLatency: *latency,
		Seed:        *seed,
	}
	rel, err := service.New(service.DemoContract(*version), service.DemoBehaviours(), plan)
	if err != nil {
		return err
	}
	if *regURL != "" {
		if *public == "" {
			return fmt.Errorf("-registry requires -public")
		}
		client := &registry.Client{Base: *regURL}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := client.Publish(ctx, registry.Entry{
			Name:    rel.Contract().Name,
			Version: *version,
			URL:     *public,
		}); err != nil {
			return fmt.Errorf("publishing to registry: %w", err)
		}
		log.Printf("wsdemo: published %s %s to %s", rel.Contract().Name, *version, *regURL)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           rel.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("wsdemo: release %s listening on %s (ER=%.3f NER=%.3f latency=%v)",
		*version, *addr, *er, *ner, *latency)
	return srv.ListenAndServe()
}
