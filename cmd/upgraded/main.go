// Command upgraded runs the managed-upgrade middleware as a standalone
// proxy (the Fig 4 deployment): consumers call it through the service's
// WSDL interface; it fans requests out to the deployed releases,
// adjudicates, monitors, and switches to the new release when the
// configured confidence criterion is met.
//
//	upgraded -addr :8080 \
//	    -release 1.0=http://localhost:8081 \
//	    -release 1.1=http://localhost:8082 \
//	    -phase observation -criterion 3 -confidence 0.99 \
//	    -check-every 100 -timeout 2s
//
// The middleware serves SOAP at "/", its confidence-extended WSDL at
// "/wsdl" and liveness at "/healthz"; it answers the §6.2 OperationConf
// and "<op>Conf" operations, and logs every adjudicated demand as JSONL
// to -log (default stderr off).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/core"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/service"
	"wsupgrade/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "upgraded:", err)
		os.Exit(1)
	}
}

type releaseFlags []core.Endpoint

func (r *releaseFlags) String() string { return fmt.Sprintf("%v", []core.Endpoint(*r)) }

func (r *releaseFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("release must be version=url, got %q", v)
	}
	*r = append(*r, core.Endpoint{Version: parts[0], URL: parts[1]})
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("upgraded", flag.ContinueOnError)
	var releases releaseFlags
	fs.Var(&releases, "release", "deployed release as version=url (repeat; oldest first)")
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		phase      = fs.String("phase", "parallel", "initial phase: old-only|observation|parallel|new-only")
		mode       = fs.String("mode", "reliability", "fan-out mode: reliability|responsiveness|dynamic|sequential")
		quorum     = fs.Int("quorum", 1, "responses to wait for in dynamic mode")
		timeout    = fs.Duration("timeout", 2*time.Second, "per-request fan-out timeout")
		criterion  = fs.Int("criterion", 3, "switch criterion (1, 2 or 3); 0 disables auto-switch")
		confidence = fs.Float64("confidence", 0.99, "criterion confidence level")
		target     = fs.Float64("target", 1e-3, "criterion 2 pfd target / published-confidence target")
		checkEvery = fs.Int("check-every", 100, "evaluate the criterion every N demands")
		pfdUpper   = fs.Float64("pfd-upper", 0.1, "prior pfd support upper bound")
		logPath    = fs.String("log", "", "JSONL event log path (empty = no log)")
		oracleName = fs.String("oracle", "reference", "failure oracle: fault-only|reference|back-to-back")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(releases) == 0 {
		return fmt.Errorf("at least one -release is required")
	}

	cfg := core.Config{
		Releases: releases,
		Timeout:  *timeout,
		Quorum:   *quorum,
	}

	switch *phase {
	case "old-only":
		cfg.InitialPhase = core.PhaseOldOnly
	case "observation":
		cfg.InitialPhase = core.PhaseObservation
	case "parallel":
		cfg.InitialPhase = core.PhaseParallel
	case "new-only":
		cfg.InitialPhase = core.PhaseNewOnly
	default:
		return fmt.Errorf("unknown phase %q", *phase)
	}

	switch *mode {
	case "reliability":
		cfg.Mode = core.ModeReliability
	case "responsiveness":
		cfg.Mode = core.ModeResponsiveness
	case "dynamic":
		cfg.Mode = core.ModeDynamic
	case "sequential":
		cfg.Mode = core.ModeSequential
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	switch *oracleName {
	case "fault-only":
		cfg.Oracle = oracle.FaultOnly{}
	case "reference":
		cfg.Oracle = oracle.Reference{Release: releases[0].Version}
	case "back-to-back":
		cfg.Oracle = oracle.BackToBack{}
	default:
		return fmt.Errorf("unknown oracle %q", *oracleName)
	}

	prior := stats.ScaledBeta{Alpha: 1, Beta: 3, Upper: *pfdUpper}
	cfg.Inference = &bayes.WhiteBoxConfig{
		PriorA: prior, PriorB: prior,
		GridA: 60, GridB: 60, GridC: 16, GridAB: 80,
	}
	cfg.ConfidenceTarget = *target
	cfg.EnableConfOps = true
	cfg.PublishHeader = true
	contract := service.DemoContract(releases[len(releases)-1].Version)
	cfg.Contract = &contract

	if *criterion != 0 {
		var crit bayes.Criterion
		switch *criterion {
		case 1:
			c1, err := bayes.NewCriterion1(prior, *confidence)
			if err != nil {
				return err
			}
			crit = c1
		case 2:
			crit = bayes.Criterion2{Confidence: *confidence, Target: *target}
		case 3:
			crit = bayes.Criterion3{Confidence: *confidence}
		default:
			return fmt.Errorf("unknown criterion %d", *criterion)
		}
		cfg.Policy = &core.PolicyConfig{Criterion: crit, CheckEvery: *checkEvery}
	}

	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening log: %w", err)
		}
		defer f.Close()
		cfg.Store = io.Writer(f)
	}

	engine, err := core.New(cfg)
	if err != nil {
		return err
	}
	defer engine.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           engine.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("upgraded: managing %d releases on %s (phase %v, mode %v)",
		len(releases), *addr, cfg.InitialPhase, cfg.Mode)
	return srv.ListenAndServe()
}
