// Command upgraded runs the managed-upgrade middleware as a standalone
// proxy (the Fig 4 deployment): consumers call it through the service's
// WSDL interface; it fans requests out to the deployed releases,
// adjudicates, monitors, and switches to the new release when the
// configured confidence criterion is met.
//
// Single-unit mode manages one service from flags:
//
//	upgraded -addr :8080 \
//	    -release 1.0=http://localhost:8081 \
//	    -release 1.1=http://localhost:8082 \
//	    -phase observation -criterion 3 -confidence 0.99 \
//	    -check-every 100 -timeout 2s
//
// The middleware serves SOAP at "/", its confidence-extended WSDL at
// "/wsdl" and liveness at "/healthz"; it answers the §6.2 OperationConf
// and "<op>Conf" operations, and logs every adjudicated demand as JSONL
// to -log (default stderr off).
//
// Fleet mode hosts many upgrade units — the Fig 1/4 composite's
// components, each upgrading independently — behind one listener from a
// JSON config:
//
//	upgraded -addr :8080 -fleet fleet.json
//
//	{
//	  "units": [
//	    {"name": "flights", "phase": "observation", "criterion": 3,
//	     "releases": [{"version": "1.0", "url": "http://localhost:8081"},
//	                  {"version": "1.1", "url": "http://localhost:8082"}]},
//	    {"name": "hotels",
//	     "releases": [{"version": "2.0", "url": "http://localhost:8091"}]}
//	  ]
//	}
//
// Units are served under "/<name>/" (or dedicated virtual hosts via
// "hosts"), with the JSON admin API under /fleet/ (per-unit status,
// SetPhase, SetMode, release add/remove, confidence) and the registry
// upgrade-notification fan-in at /fleet/notify.
//
// On SIGINT/SIGTERM the server drains in-flight requests via
// http.Server.Shutdown (bounded by -drain), then closes the engine or
// fleet so background monitoring work completes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"wsupgrade/internal/bayes"
	"wsupgrade/internal/core"
	"wsupgrade/internal/dispatch"
	"wsupgrade/internal/fleet"
	"wsupgrade/internal/journal"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/protocol/jsoncodec"
	"wsupgrade/internal/service"
	"wsupgrade/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "upgraded:", err)
		os.Exit(1)
	}
}

type releaseFlags []core.Endpoint

func (r *releaseFlags) String() string { return fmt.Sprintf("%v", []core.Endpoint(*r)) }

func (r *releaseFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("release must be version=url, got %q", v)
	}
	*r = append(*r, core.Endpoint{Version: parts[0], URL: parts[1]})
	return nil
}

// unitParams is everything needed to build one unit's engine config —
// shared by the single-unit flags and each fleet config entry.
type unitParams struct {
	Releases   []core.Endpoint
	Phase      string
	Mode       string
	Quorum     int
	Timeout    time.Duration
	Criterion  int
	Confidence float64
	Target     float64
	CheckEvery int
	PfdUpper   float64
	Oracle     string
	LogPath    string
	// Protocol is the unit's wire protocol: "soap" (default) or
	// "json". A JSON unit skips the SOAP-only §6.2 confidence
	// operations and the /wsdl contract; confidence publishes over the
	// X-Wsupgrade-Confidence HTTP header instead.
	Protocol string
	// UseNetHTTP forces the net/http release transport instead of the
	// default wire client (TLS, proxies, exotic deployments).
	UseNetHTTP bool
}

// engineConfig translates unit parameters into a core.Config. The
// returned closer owns the JSONL log file, if any.
func engineConfig(p unitParams) (core.Config, io.Closer, error) {
	cfg := core.Config{
		Releases:   p.Releases,
		Timeout:    p.Timeout,
		Quorum:     p.Quorum,
		UseNetHTTP: p.UseNetHTTP,
	}
	if len(p.Releases) == 0 {
		return cfg, nil, fmt.Errorf("at least one release is required")
	}

	if p.Phase != "" {
		phase, err := lifecycle.ParsePhase(p.Phase)
		if err != nil {
			return cfg, nil, fmt.Errorf("unknown phase %q", p.Phase)
		}
		cfg.InitialPhase = phase
	}
	if p.Mode != "" {
		mode, err := dispatch.ParseMode(p.Mode)
		if err != nil {
			return cfg, nil, fmt.Errorf("unknown mode %q", p.Mode)
		}
		cfg.Mode = mode
	}

	jsonUnit := false
	switch p.Protocol {
	case "", "soap":
	case "json":
		jsonUnit = true
		cfg.Codec = jsoncodec.Default
	default:
		return cfg, nil, fmt.Errorf("unknown protocol %q", p.Protocol)
	}

	switch p.Oracle {
	case "fault-only":
		cfg.Oracle = oracle.FaultOnly{}
	case "reference", "":
		cfg.Oracle = oracle.Reference{Release: p.Releases[0].Version, Codec: cfg.Codec}
	case "back-to-back":
		cfg.Oracle = oracle.BackToBack{Codec: cfg.Codec}
	default:
		return cfg, nil, fmt.Errorf("unknown oracle %q", p.Oracle)
	}

	pfdUpper := p.PfdUpper
	if pfdUpper == 0 {
		pfdUpper = 0.1
	}
	prior := stats.ScaledBeta{Alpha: 1, Beta: 3, Upper: pfdUpper}
	cfg.Inference = &bayes.WhiteBoxConfig{
		PriorA: prior, PriorB: prior,
		GridA: 60, GridB: 60, GridC: 16, GridAB: 80,
	}
	cfg.ConfidenceTarget = p.Target
	cfg.PublishHeader = true
	if !jsonUnit {
		// The §6.2 confidence operations and the /wsdl contract are
		// SOAP-native; a JSON unit publishes confidence over the
		// X-Wsupgrade-Confidence HTTP header alone.
		cfg.EnableConfOps = true
		contract := service.DemoContract(p.Releases[len(p.Releases)-1].Version)
		cfg.Contract = &contract
	}

	if p.Criterion != 0 {
		confidence := p.Confidence
		if confidence == 0 {
			confidence = 0.99
		}
		var crit bayes.Criterion
		switch p.Criterion {
		case 1:
			c1, err := bayes.NewCriterion1(prior, confidence)
			if err != nil {
				return cfg, nil, err
			}
			crit = c1
		case 2:
			crit = bayes.Criterion2{Confidence: confidence, Target: p.Target}
		case 3:
			crit = bayes.Criterion3{Confidence: confidence}
		default:
			return cfg, nil, fmt.Errorf("unknown criterion %d", p.Criterion)
		}
		checkEvery := p.CheckEvery
		if checkEvery == 0 {
			checkEvery = 100
		}
		cfg.Policy = &core.PolicyConfig{Criterion: crit, CheckEvery: checkEvery}
	}

	var closer io.Closer
	if p.LogPath != "" {
		f, err := os.OpenFile(p.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return cfg, nil, fmt.Errorf("opening log: %w", err)
		}
		cfg.Store = f
		closer = f
	}
	return cfg, closer, nil
}

// fleetFile is the -fleet JSON configuration.
type fleetFile struct {
	// AdminToken guards the /fleet/ management surface (see
	// fleet.Config.AdminToken); the -admin-token flag overrides it.
	AdminToken string      `json:"adminToken,omitempty"`
	Units      []fleetUnit `json:"units"`
}

type fleetUnit struct {
	Name       string          `json:"name"`
	Hosts      []string        `json:"hosts,omitempty"`
	Service    string          `json:"service,omitempty"`
	Releases   []core.Endpoint `json:"releases"`
	Phase      string          `json:"phase,omitempty"`
	Mode       string          `json:"mode,omitempty"`
	Quorum     int             `json:"quorum,omitempty"`
	TimeoutMS  int             `json:"timeoutMs,omitempty"`
	Criterion  int             `json:"criterion,omitempty"`
	Confidence float64         `json:"confidence,omitempty"`
	Target     float64         `json:"target,omitempty"`
	CheckEvery int             `json:"checkEvery,omitempty"`
	PfdUpper   float64         `json:"pfdUpper,omitempty"`
	Oracle     string          `json:"oracle,omitempty"`
	Protocol   string          `json:"protocol,omitempty"`
	Log        string          `json:"log,omitempty"`
	UseNetHTTP bool            `json:"useNetHTTP,omitempty"`
}

// loadFleetConfig builds the fleet configuration from a JSON file.
// netHTTP forces the net/http release transport on every unit.
func loadFleetConfig(path string, defaultTarget float64, netHTTP bool) (fleet.Config, []io.Closer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return fleet.Config{}, nil, fmt.Errorf("reading fleet config: %w", err)
	}
	var ff fleetFile
	if err := json.Unmarshal(data, &ff); err != nil {
		return fleet.Config{}, nil, fmt.Errorf("parsing fleet config: %w", err)
	}
	if len(ff.Units) == 0 {
		return fleet.Config{}, nil, fmt.Errorf("fleet config has no units")
	}
	cfg := fleet.Config{AdminToken: ff.AdminToken}
	var closers []io.Closer
	closeAll := func() {
		for _, c := range closers {
			_ = c.Close()
		}
	}
	for _, u := range ff.Units {
		target := u.Target
		if target == 0 {
			target = defaultTarget
		}
		ecfg, closer, err := engineConfig(unitParams{
			Releases:   u.Releases,
			Phase:      u.Phase,
			Mode:       u.Mode,
			Quorum:     u.Quorum,
			Timeout:    time.Duration(u.TimeoutMS) * time.Millisecond,
			Criterion:  u.Criterion,
			Confidence: u.Confidence,
			Target:     target,
			CheckEvery: u.CheckEvery,
			PfdUpper:   u.PfdUpper,
			Oracle:     u.Oracle,
			Protocol:   u.Protocol,
			LogPath:    u.Log,
			UseNetHTTP: u.UseNetHTTP || netHTTP,
		})
		if err != nil {
			closeAll()
			return fleet.Config{}, nil, fmt.Errorf("unit %q: %w", u.Name, err)
		}
		if closer != nil {
			closers = append(closers, closer)
		}
		cfg.Units = append(cfg.Units, fleet.UnitConfig{
			Name:     u.Name,
			Hosts:    u.Hosts,
			Service:  u.Service,
			Protocol: u.Protocol,
			Engine:   ecfg,
		})
	}
	return cfg, closers, nil
}

// attachEngineJournal makes a single-unit campaign durable, mirroring
// what the fleet does per unit: quarantine-tolerant open, restore the
// replayed campaign, subscribe the writer to the engine's lifecycle,
// compact history into one snapshot, and start the snapshot loop. The
// returned closer stops the loop and flushes the writer.
func attachEngineJournal(engine *core.Engine, dir string, interval time.Duration) (func() error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal dir: %w", err)
	}
	w, jst, err := journal.OpenOrQuarantine(filepath.Join(dir, "unit.journal"))
	if err != nil {
		if w == nil {
			return nil, fmt.Errorf("opening journal: %w", err)
		}
		log.Printf("upgraded: journal quarantined, campaign starts fresh: %v", err)
	}
	if err := engine.RestoreCampaign(jst); err != nil {
		log.Printf("upgraded: journal restore failed, campaign starts fresh: %v", err)
	}
	engine.AttachJournal(w)
	snap := engine.CampaignSnapshot()
	if err := w.Compact(journal.Entry{
		Kind: journal.KindSnapshot, Time: time.Now().UnixNano(), Snapshot: &snap,
	}); err != nil {
		_ = w.Close()
		return nil, fmt.Errorf("compacting journal: %w", err)
	}
	stop, err := engine.StartCampaignSnapshots(w, interval)
	if err != nil {
		_ = w.Close()
		return nil, err
	}
	return func() error {
		stop()
		return w.Close()
	}, nil
}

// onListen, when set, observes the bound listener address (tests bind
// to :0 and need the real port).
var onListen func(net.Addr)

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("upgraded", flag.ContinueOnError)
	var releases releaseFlags
	fs.Var(&releases, "release", "deployed release as version=url (repeat; oldest first)")
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		fleetPath  = fs.String("fleet", "", "fleet config JSON: host many upgrade units behind this listener")
		phase      = fs.String("phase", "parallel", "initial phase: old-only|observation|parallel|new-only")
		mode       = fs.String("mode", "reliability", "fan-out mode: reliability|responsiveness|dynamic|sequential")
		quorum     = fs.Int("quorum", 1, "responses to wait for in dynamic mode")
		timeout    = fs.Duration("timeout", 2*time.Second, "per-request fan-out timeout")
		criterion  = fs.Int("criterion", 3, "switch criterion (1, 2 or 3); 0 disables auto-switch")
		confidence = fs.Float64("confidence", 0.99, "criterion confidence level")
		target     = fs.Float64("target", 1e-3, "criterion 2 pfd target / published-confidence target")
		checkEvery = fs.Int("check-every", 100, "evaluate the criterion every N demands")
		pfdUpper   = fs.Float64("pfd-upper", 0.1, "prior pfd support upper bound")
		logPath    = fs.String("log", "", "JSONL event log path (empty = no log)")
		oracleName = fs.String("oracle", "reference", "failure oracle: fault-only|reference|back-to-back")
		protoName  = fs.String("protocol", "soap", "wire protocol of the mediated unit: soap|json")
		adminToken = fs.String("admin-token", "", "fleet mode: token guarding the /fleet/ admin API (overrides the config's adminToken)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		netHTTP    = fs.Bool("net-http", false, "use the net/http release transport instead of the default wire client (TLS, proxies)")
		journalDir = fs.String("journal-dir", "", "directory for durable campaign journals; a restart resumes each unit's phase and posterior from its journal")
		snapEvery  = fs.Duration("snapshot-interval", fleet.DefaultSnapshotInterval, "journal snapshot cadence (with -journal-dir)")
		addrFile   = fs.String("addr-file", "", "write the bound listener address to this file (for wrappers that start on :0)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		handler http.Handler
		closer  func() error
		banner  string
	)
	if *fleetPath != "" {
		cfg, logClosers, err := loadFleetConfig(*fleetPath, *target, *netHTTP)
		if err != nil {
			return err
		}
		if *adminToken != "" {
			cfg.AdminToken = *adminToken
		}
		cfg.JournalDir = *journalDir
		cfg.SnapshotInterval = *snapEvery
		f, err := fleet.New(cfg)
		if err != nil {
			for _, c := range logClosers {
				_ = c.Close()
			}
			return err
		}
		handler = f
		closer = func() error {
			err := f.Close()
			for _, c := range logClosers {
				_ = c.Close()
			}
			return err
		}
		banner = fmt.Sprintf("hosting %d upgrade units on %s", len(cfg.Units), *addr)
	} else {
		cfg, logCloser, err := engineConfig(unitParams{
			Releases:   releases,
			Phase:      *phase,
			Mode:       *mode,
			Quorum:     *quorum,
			Timeout:    *timeout,
			Criterion:  *criterion,
			Confidence: *confidence,
			Target:     *target,
			CheckEvery: *checkEvery,
			PfdUpper:   *pfdUpper,
			Oracle:     *oracleName,
			Protocol:   *protoName,
			LogPath:    *logPath,
			UseNetHTTP: *netHTTP,
		})
		if err != nil {
			return err
		}
		engine, err := core.New(cfg)
		if err != nil {
			if logCloser != nil {
				_ = logCloser.Close()
			}
			return err
		}
		var journalCloser func() error
		if *journalDir != "" {
			journalCloser, err = attachEngineJournal(engine, *journalDir, *snapEvery)
			if err != nil {
				_ = engine.Close()
				if logCloser != nil {
					_ = logCloser.Close()
				}
				return err
			}
		}
		handler = engine.Handler()
		closer = func() error {
			err := engine.Close()
			if journalCloser != nil {
				if jerr := journalCloser(); err == nil {
					err = jerr
				}
			}
			if logCloser != nil {
				_ = logCloser.Close()
			}
			return err
		}
		banner = fmt.Sprintf("managing %d releases on %s (phase %v, mode %v)",
			len(releases), *addr, cfg.InitialPhase, cfg.Mode)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = closer()
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	if *addrFile != "" {
		// Write-then-rename so a polling wrapper never reads a torn file.
		tmp := *addrFile + ".tmp"
		werr := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644)
		if werr == nil {
			werr = os.Rename(tmp, *addrFile)
		}
		if werr != nil {
			_ = ln.Close()
			_ = closer()
			return fmt.Errorf("writing -addr-file: %w", werr)
		}
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("upgraded: %s", banner)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		_ = closer()
		return err
	case <-ctx.Done():
		// Drain in-flight requests, then let the engine/fleet finish its
		// background monitoring work.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		shutErr := srv.Shutdown(drainCtx)
		if shutErr != nil {
			_ = srv.Close()
		}
		closeErr := closer()
		<-errCh // Serve has returned (http.ErrServerClosed)
		log.Printf("upgraded: drained and stopped")
		return errors.Join(shutErr, closeErr)
	}
}
