package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestReleaseFlagParsing(t *testing.T) {
	var r releaseFlags
	if err := r.Set("1.0=http://localhost:8081"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("1.1=http://localhost:8082"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0].Version != "1.0" || r[1].URL != "http://localhost:8082" {
		t.Fatalf("parsed = %+v", r)
	}
	if r.String() == "" {
		t.Fatal("String() empty")
	}
	for _, bad := range []string{"", "1.0", "=http://x", "1.0="} {
		var rf releaseFlags
		if err := rf.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	cases := map[string][]string{
		"no releases":   {},
		"bad phase":     {"-release", "1.0=http://x", "-phase", "sideways"},
		"bad mode":      {"-release", "1.0=http://x", "-mode", "warp"},
		"bad criterion": {"-release", "1.0=http://x", "-criterion", "9"},
		"bad oracle":    {"-release", "1.0=http://x", "-oracle", "crystal-ball"},
		"bad flag":      {"-bogus"},
		"missing fleet": {"-fleet", "/nonexistent/fleet.json"},
	}
	for name, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("%s: accepted", name)
		} else if strings.Contains(err.Error(), "listen") {
			t.Errorf("%s: reached ListenAndServe: %v", name, err)
		}
	}
}

func TestFleetConfigRejected(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not json":  `釣り`,
		"no units":  `{"units": []}`,
		"bad unit":  `{"units": [{"name": "a", "releases": []}]}`,
		"bad phase": `{"units": [{"name": "a", "phase": "sideways", "releases": [{"version":"1.0","url":"http://x"}]}]}`,
		"reserved name": `{"units": [{"name": "fleet",
			"releases": [{"version":"1.0","url":"http://x"}, {"version":"1.1","url":"http://y"}]}]}`,
	}
	i := 0
	for name, content := range cases {
		path := filepath.Join(dir, fmt.Sprintf("fleet-%d.json", i))
		i++
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(context.Background(), []string{"-fleet", path}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// startRun boots run() on an ephemeral port and returns the base URL
// and a shutdown trigger.
func startRun(t *testing.T, args []string) (string, context.CancelFunc, chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, args...))
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), cancel, errCh
	case err := <-errCh:
		cancel()
		t.Fatalf("run exited before listening: %v", err)
		return "", nil, nil
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("run never bound its listener")
		return "", nil, nil
	}
}

// SIGINT/SIGTERM cancel main's context; run must drain via
// http.Server.Shutdown and close the engine, returning nil.
func TestGracefulShutdownSingleUnit(t *testing.T) {
	base, cancel, errCh := startRun(t, []string{
		"-release", "1.0=http://127.0.0.1:1",
		"-phase", "old-only", "-criterion", "0",
	})
	// The server is live.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	// Trigger shutdown; run returns cleanly.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run never drained")
	}
	// The listener really is gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

func TestFleetModeServesUnitsAndAdmin(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	cfg := `{"units": [
		{"name": "flights", "criterion": 0,
		 "releases": [{"version": "1.0", "url": "http://127.0.0.1:1"},
		              {"version": "1.1", "url": "http://127.0.0.1:1"}]},
		{"name": "hotels", "phase": "old-only", "criterion": 3,
		 "releases": [{"version": "2.0", "url": "http://127.0.0.1:1"},
		              {"version": "2.1", "url": "http://127.0.0.1:1"}]}
	]}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	base, cancel, errCh := startRun(t, []string{"-fleet", path})
	defer cancel()

	resp, err := http.Get(base + "/fleet/units")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin units = %d: %s", resp.StatusCode, body)
	}
	var units []struct {
		Unit  string `json:"unit"`
		Phase string `json:"phase"`
	}
	if err := json.Unmarshal(body, &units); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if len(units) != 2 || units[0].Unit != "flights" || units[1].Phase != "old-only" {
		t.Fatalf("units = %+v", units)
	}
	// Per-unit surface is routed.
	resp, err = http.Get(base + "/flights/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/flights/healthz = %d", resp.StatusCode)
	}

	// Fleet shutdown drains cleanly too.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("fleet shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("fleet run never drained")
	}
}
