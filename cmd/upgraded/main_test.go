package main

import (
	"strings"
	"testing"
)

func TestReleaseFlagParsing(t *testing.T) {
	var r releaseFlags
	if err := r.Set("1.0=http://localhost:8081"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("1.1=http://localhost:8082"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0].Version != "1.0" || r[1].URL != "http://localhost:8082" {
		t.Fatalf("parsed = %+v", r)
	}
	if r.String() == "" {
		t.Fatal("String() empty")
	}
	for _, bad := range []string{"", "1.0", "=http://x", "1.0="} {
		var rf releaseFlags
		if err := rf.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	cases := map[string][]string{
		"no releases":   {},
		"bad phase":     {"-release", "1.0=http://x", "-phase", "sideways"},
		"bad mode":      {"-release", "1.0=http://x", "-mode", "warp"},
		"bad criterion": {"-release", "1.0=http://x", "-criterion", "9"},
		"bad oracle":    {"-release", "1.0=http://x", "-oracle", "crystal-ball"},
		"bad flag":      {"-bogus"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: accepted", name)
		} else if strings.Contains(err.Error(), "listen") {
			t.Errorf("%s: reached ListenAndServe: %v", name, err)
		}
	}
}
