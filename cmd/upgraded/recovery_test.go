package main

// The tentpole robustness proof: kill -9 the mediator mid-campaign and
// assert the restarted process resumes the exact §4.1 phase and the
// posterior of the last journal snapshot — not the configured campaign
// start. The mediator runs as a real subprocess (SIGKILL cannot be
// delivered to a goroutine), built from this package.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsupgrade/internal/journal"
	"wsupgrade/internal/lifecycle"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
)

// buildUpgraded compiles this package's binary once per test run.
func buildUpgraded(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "upgraded")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startUpgraded launches the binary and waits for its -addr-file.
func startUpgraded(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, "http://" + string(data)
		}
		if cmd.ProcessState != nil {
			t.Fatal("upgraded exited before binding")
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("upgraded never wrote its addr-file")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// demoRelease boots one live demo release the subprocess can reach.
func demoRelease(t *testing.T, version string) string {
	t.Helper()
	rel, err := service.New(service.DemoContract(version), service.DemoBehaviours(), service.FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: rel.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return "http://" + ln.Addr().String()
}

func unitPhase(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/fleet/units/svc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unit status = %d: %s", resp.StatusCode, body)
	}
	var st struct {
		Phase string `json:"phase"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	return st.Phase
}

func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a subprocess")
	}
	bin := buildUpgraded(t)
	oldURL := demoRelease(t, "1.0")
	newURL := demoRelease(t, "1.1")

	dir := t.TempDir()
	jdir := filepath.Join(dir, "journals")
	cfgPath := filepath.Join(dir, "fleet.json")
	cfg := fmt.Sprintf(`{"units": [{"name": "svc", "phase": "observation", "criterion": 0,
		"releases": [{"version": "1.0", "url": %q}, {"version": "1.1", "url": %q}]}]}`,
		oldURL, newURL)
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-fleet", cfgPath, "-journal-dir", jdir, "-snapshot-interval", "50ms"}

	cmd, base := startUpgraded(t, bin, args...)
	client := &soap.Client{URL: base + "/svc", HTTP: &http.Client{Timeout: 5 * time.Second}}
	drive := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			var out service.AddResponse
			if err := client.Call(context.Background(), "add", service.AddRequest{A: i, B: 1}, &out); err != nil {
				t.Fatalf("demand %d: %v", i, err)
			}
		}
	}
	drive(60)

	// Wait until a snapshot has captured the traffic so the kill loses
	// at most one interval's worth of posterior.
	jpath := filepath.Join(jdir, "svc.journal")
	waitSnapshot := func(wantN int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if data, err := os.ReadFile(jpath); err == nil {
				if st, _, derr := journal.Decode(data); derr == nil && st.Snapshot != nil &&
					st.Snapshot.Campaign.Joint.N >= wantN {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("no snapshot with N >= %d", wantN)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitSnapshot(60)

	// A management transition the config does not know about: the
	// restarted process can only learn it from the journal.
	req, err := http.NewRequest(http.MethodPost, base+"/fleet/units/svc/phase",
		strings.NewReader(`{"phase":"parallel"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("phase change = %d: %s", resp.StatusCode, body)
	}
	drive(20)

	// kill -9: no drain, no flush barrier, no goodbye.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// What the journal actually holds is the recovery contract: the last
	// snapshot plus every transition journaled after it.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	expected, _, err := journal.Decode(data)
	if err != nil {
		t.Fatalf("post-kill journal replay: %v", err)
	}
	if expected.Phase != lifecycle.PhaseParallel {
		t.Fatalf("journal phase %v, want parallel (transition lost?)", expected.Phase)
	}
	if expected.Snapshot == nil || expected.Snapshot.Campaign.Joint.N < 60 {
		t.Fatalf("journal snapshot %+v", expected.Snapshot)
	}
	wantN := expected.Snapshot.Campaign.Joint.N

	// Restart onto the same journals. The config still says Observation;
	// the journal must win.
	_, base2 := startUpgraded(t, bin, args...)
	if got := unitPhase(t, base2); got != "parallel" {
		t.Fatalf("restarted phase %q, want parallel", got)
	}
	resp, err = http.Get(base2 + "/fleet/units/svc/confidence")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("confidence = %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Demands int `json:"Demands"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if rep.Demands != wantN {
		t.Fatalf("restored demands %d, want the snapshot's %d", rep.Demands, wantN)
	}
}
