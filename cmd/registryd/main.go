// Command registryd serves the UDDI-style service registry over HTTP:
//
//	registryd -addr :8070
//
// API (XML over HTTP):
//
//	POST /publish    register a release (<entry>)
//	GET  /find?name=N         all releases of a service, newest first
//	GET  /get?name=N&version=V one release
//	POST /subscribe  upgrade-notification callback (<subscription>)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"wsupgrade/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "registryd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("registryd", flag.ContinueOnError)
	addr := fs.String("addr", ":8070", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           registry.NewServer(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("registryd: listening on %s", *addr)
	return srv.ListenAndServe()
}
