// Benchmarks regenerating every table and figure of the paper's
// evaluation (the rows/series themselves are printed by cmd/repro; the
// benches measure the cost of regeneration and carry the ablations
// called out in DESIGN.md §5).
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkTable5
package wsupgrade

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"wsupgrade/internal/adjudicate"
	"wsupgrade/internal/bayes"
	"wsupgrade/internal/journal"
	"wsupgrade/internal/monitor"
	"wsupgrade/internal/oracle"
	"wsupgrade/internal/protocol/jsoncodec"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/repro"
	"wsupgrade/internal/service"
	"wsupgrade/internal/soap"
	"wsupgrade/internal/stats"
	"wsupgrade/internal/upgsim"
	"wsupgrade/internal/xrand"
)

// benchGrid is the full-resolution inference grid used by cmd/repro.
var benchGrid = repro.GridConfig{A: 80, B: 80, C: 24, AB: 120}

// BenchmarkTable2Scenario1 regenerates the Scenario 1 block of Table 2
// (duration of managed upgrade under three criteria × three detection
// regimes).
func BenchmarkTable2Scenario1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.RunSwitchStudy(repro.StudyConfig{
			Scenario: relmodel.Scenario1(),
			Step:     500,
			Grid:     benchGrid,
			Seed:     42,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Regimes[repro.RegimePerfect].Criteria[repro.Criterion2].Attained {
			b.Fatal("scenario 1 criterion 2 should not be attainable with perfect detection")
		}
	}
}

// BenchmarkTable2Scenario2 regenerates the Scenario 2 block of Table 2.
func BenchmarkTable2Scenario2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.RunSwitchStudy(repro.StudyConfig{
			Scenario:   relmodel.Scenario2(),
			Step:       100,
			MaxDemands: 15000,
			Grid:       benchGrid,
			Seed:       42,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Regimes[repro.RegimePerfect].Criteria[repro.Criterion1].Attained {
			b.Fatal("scenario 2 criterion 1 must be attainable")
		}
	}
}

// BenchmarkFigure7 regenerates the Scenario 1 percentile trajectories
// (Fig 7): five series over 50,000 demands.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.RunSwitchStudy(repro.StudyConfig{
			Scenario: relmodel.Scenario1(),
			Step:     2000,
			Grid:     benchGrid,
			Seed:     42,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trajectory) == 0 {
			b.Fatal("no trajectory")
		}
	}
}

// BenchmarkFigure8 regenerates the Scenario 2 percentile trajectories
// (Fig 8) over the paper's 10,000-demand range.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.RunSwitchStudy(repro.StudyConfig{
			Scenario:   relmodel.Scenario2(),
			Step:       500,
			MaxDemands: 10000,
			Grid:       benchGrid,
			Seed:       42,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trajectory) == 0 {
			b.Fatal("no trajectory")
		}
	}
}

// BenchmarkTable5 regenerates Table 5: the §5.2 simulation with
// correlated release behaviour — 4 runs × 3 timeouts × 10,000 requests.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := repro.RunAvailabilityStudy(repro.AvailabilityConfig{
			Correlated: true, Requests: 10000, Seed: 2004})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable6 regenerates Table 6 (independent release behaviour).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := repro.RunAvailabilityStudy(repro.AvailabilityConfig{
			Correlated: false, Requests: 10000, Seed: 2004})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			r := row.Result
			if r.System.CR <= r.Rel1.CR || r.System.CR <= r.Rel2.CR {
				b.Fatalf("run %d: independence must let the system beat both releases", row.Run)
			}
		}
	}
}

// BenchmarkAblationModes measures the §4.2 operating modes on one
// workload (run 1, timeout 2 s): reliability vs responsiveness vs dynamic
// quorum vs sequential.
func BenchmarkAblationModes(b *testing.B) {
	for _, mode := range []struct {
		name   string
		mode   upgsim.Mode
		quorum int
	}{
		{"reliability", upgsim.ParallelReliability, 0},
		{"responsiveness", upgsim.ParallelResponsiveness, 0},
		{"dynamic-q1", upgsim.ParallelDynamic, 1},
		{"sequential", upgsim.Sequential, 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var met float64
			var execs int
			for i := 0; i < b.N; i++ {
				res, err := upgsim.Simulate(upgsim.Config{
					Run:        relmodel.Runs()[0],
					Correlated: true,
					Latency:    relmodel.PaperLatency(),
					TimeOut:    2.0,
					Requests:   10000,
					Seed:       7,
					Mode:       mode.mode,
					Quorum:     mode.quorum,
				})
				if err != nil {
					b.Fatal(err)
				}
				met = res.System.MET
				execs = res.System.Executions
			}
			b.ReportMetric(met, "sysMET-s")
			b.ReportMetric(float64(execs)/10000, "execs/req")
		})
	}
}

// BenchmarkAblationGridResolution measures the accuracy/cost trade-off of
// the white-box posterior grid: finer grids cost more per posterior; the
// reported 99% percentile of the new release shows the discretization
// drift.
func BenchmarkAblationGridResolution(b *testing.B) {
	counts := bayes.JointCounts{N: 50000, Both: 13, AOnly: 40, BOnly: 31}
	s1 := relmodel.Scenario1()
	for _, grid := range []int{40, 80, 120, 160} {
		b.Run(fmt.Sprintf("grid-%d", grid), func(b *testing.B) {
			w, err := bayes.NewWhiteBox(bayes.WhiteBoxConfig{
				PriorA: s1.PriorA, PriorB: s1.PriorB,
				GridA: grid, GridB: grid, GridC: grid / 4, GridAB: 2 * grid,
			})
			if err != nil {
				b.Fatal(err)
			}
			var p99 float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post, err := w.Posterior(counts)
				if err != nil {
					b.Fatal(err)
				}
				p99 = post.PercentileB(0.99)
			}
			b.ReportMetric(p99*1e3, "TB99-x1e-3")
		})
	}
}

// BenchmarkAblationAdjudicators compares the per-call cost of the
// adjudication strategies on a realistic reply set.
func BenchmarkAblationAdjudicators(b *testing.B) {
	replies := []adjudicate.Reply{
		{Release: "1.0", Body: []byte("<r><x>42</x></r>"), Latency: 120 * time.Millisecond},
		{Release: "1.1", Body: []byte("<r><x>42</x></r>"), Latency: 80 * time.Millisecond},
		{Release: "1.2", Body: []byte("<r><x>41</x></r>"), Latency: 60 * time.Millisecond},
	}
	for _, adj := range []adjudicate.Adjudicator{
		adjudicate.RandomValid{}, adjudicate.Majority{}, adjudicate.FastestValid{},
	} {
		b.Run(adj.Name(), func(b *testing.B) {
			rng := xrand.New(1)
			for i := 0; i < b.N; i++ {
				if _, err := adj.Adjudicate(replies, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWhiteBoxPosterior measures the inference hot path at the
// default resolution.
func BenchmarkWhiteBoxPosterior(b *testing.B) {
	s1 := relmodel.Scenario1()
	w, err := bayes.NewWhiteBox(bayes.WhiteBoxConfig{PriorA: s1.PriorA, PriorB: s1.PriorB})
	if err != nil {
		b.Fatal(err)
	}
	counts := bayes.JointCounts{N: 50000, Both: 13, AOnly: 40, BOnly: 31}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Posterior(counts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineProxy measures end-to-end middleware request latency
// over two live in-process releases (parallel reliability mode).
func BenchmarkEngineProxy(b *testing.B) {
	oldRel, err := service.New(service.DemoContract("1.0"), service.DemoBehaviours(), service.FaultPlan{})
	if err != nil {
		b.Fatal(err)
	}
	newRel, err := service.New(service.DemoContract("1.1"), service.DemoBehaviours(), service.FaultPlan{})
	if err != nil {
		b.Fatal(err)
	}
	oldTS := httptest.NewServer(oldRel.Handler())
	defer oldTS.Close()
	newTS := httptest.NewServer(newRel.Handler())
	defer newTS.Close()

	engine, err := NewEngine(EngineConfig{
		Releases: []Endpoint{
			{Version: "1.0", URL: oldTS.URL},
			{Version: "1.1", URL: newTS.URL},
		},
		Oracle: oracle.Header{},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer engine.Close()
	proxy := httptest.NewServer(engine.Handler())
	defer proxy.Close()

	client := &soap.Client{URL: proxy.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out service.AddResponse
		if err := client.Call(ctx, "add", service.AddRequest{A: i, B: 1}, &out); err != nil {
			b.Fatal(err)
		}
		if out.Sum != i+1 {
			b.Fatalf("sum = %d", out.Sum)
		}
	}
}

// BenchmarkEngineProxyParallel measures middleware request throughput
// under concurrent consumers — the dispatch hot path must not serialize
// requests on an engine-wide mutex.
func BenchmarkEngineProxyParallel(b *testing.B) {
	oldRel, err := service.New(service.DemoContract("1.0"), service.DemoBehaviours(), service.FaultPlan{})
	if err != nil {
		b.Fatal(err)
	}
	newRel, err := service.New(service.DemoContract("1.1"), service.DemoBehaviours(), service.FaultPlan{})
	if err != nil {
		b.Fatal(err)
	}
	oldTS := httptest.NewServer(oldRel.Handler())
	defer oldTS.Close()
	newTS := httptest.NewServer(newRel.Handler())
	defer newTS.Close()

	engine, err := NewEngine(EngineConfig{
		Releases: []Endpoint{
			{Version: "1.0", URL: oldTS.URL},
			{Version: "1.1", URL: newTS.URL},
		},
		Oracle: oracle.Header{},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer engine.Close()
	proxy := httptest.NewServer(engine.Handler())
	defer proxy.Close()

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &soap.Client{URL: proxy.URL, HTTP: &http.Client{Timeout: 5 * time.Second}}
		for pb.Next() {
			var out service.AddResponse
			if err := client.Call(ctx, "add", service.AddRequest{A: 2, B: 1}, &out); err != nil {
				b.Fatal(err)
			}
			if out.Sum != 3 {
				b.Fatalf("sum = %d", out.Sum)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// In-process transport benchmarks: the network is replaced entirely —
// by an in-memory pipe under the default wire transport, or a stub
// http.RoundTripper under the net/http fallback — so these isolate the
// engine's own per-request overhead (read, sniff, dispatch, adjudicate,
// monitor, re-envelope) from real round-trip cost: the network-free
// baseline ROADMAP tracks.

// stubTransport answers every release call in process with a canned SOAP
// response through the net/http client machinery. The stub itself costs
// a few allocations per call (response struct, header map, reader),
// which is the floor the fallback benchmarks cannot go below.
type stubTransport struct {
	resp []byte
}

func (t *stubTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
	}
	return &http.Response{
		Status:     "200 OK",
		StatusCode: http.StatusOK,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"Content-Type": []string{soap.ContentType}},
		Body:       io.NopCloser(bytes.NewReader(t.resp)),
		Request:    req,
	}, nil
}

// wireStub is the wire-transport analogue of stubTransport: its dial
// method hands the wire client one end of an in-memory pipe whose other
// end speaks canned HTTP/1.1 keep-alive responses.
type wireStub struct {
	resp []byte // complete response bytes: head + canned SOAP envelope
}

func newWireStub(b *testing.B, payload interface{}) *wireStub {
	b.Helper()
	env, err := soap.Envelope(payload)
	if err != nil {
		b.Fatal(err)
	}
	head := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		soap.ContentType, len(env))
	return &wireStub{resp: append([]byte(head), env...)}
}

func (s *wireStub) dial(ctx context.Context, network, addr string) (net.Conn, error) {
	client, server := net.Pipe()
	go s.serve(server)
	return pipeConn{client}, nil
}

// pipeConn absorbs future-deadline arms: net.Pipe allocates a fresh
// timer per SetDeadline, which would charge the harness — not the
// engine — an allocation per exchange (a real TCP conn arms the runtime
// poller, allocation-free). Past deadlines (the wire client's
// cancellation poison) still propagate.
type pipeConn struct {
	net.Conn
}

func (c pipeConn) SetDeadline(t time.Time) error {
	if !t.IsZero() && time.Until(t) <= 0 {
		return c.Conn.SetDeadline(t)
	}
	return nil
}

// serve answers canned responses on one pipe, allocation-free per
// request so the stub does not pollute the benchmark's allocs/op.
func (s *wireStub) serve(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		cl := -1
		for {
			line, err := br.ReadSlice('\n')
			if err != nil {
				return
			}
			if len(line) <= 2 { // blank line: end of head
				break
			}
			if n, ok := sniffContentLength(line); ok {
				cl = n
			}
		}
		if cl > 0 {
			if _, err := br.Discard(cl); err != nil {
				return
			}
		}
		if _, err := c.Write(s.resp); err != nil {
			return
		}
	}
}

// sniffContentLength matches a "Content-Length: N" header line without
// allocating.
func sniffContentLength(line []byte) (int, bool) {
	const key = "content-length:"
	if len(line) < len(key) {
		return 0, false
	}
	for i := 0; i < len(key); i++ {
		c := line[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != key[i] {
			return 0, false
		}
	}
	n := 0
	seen := false
	for _, c := range line[len(key):] {
		if c == ' ' || c == '\r' || c == '\n' {
			continue
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		seen = true
	}
	return n, seen
}

// benchTransport selects which release transport an in-process engine
// benchmarks.
type benchTransport int

const (
	viaWire    benchTransport = iota // default path: wire client over in-memory pipes
	viaNetHTTP                       // fallback path: net/http client over a stub RoundTripper
)

// benchLogCapacity bounds the in-process engines' event-log ring. The
// ring allocates per-slot backing on its first lap only, so steady-state
// measurement needs the warm-up drive (below) to lap it once; a small
// capacity keeps that warm-up cheap.
const benchLogCapacity = 256

// newInProcessEngine builds an engine over n stub releases, starting in
// the given lifecycle phase (the lifecycle guards reject backward
// transitions, so benchmarks start where they measure).
func newInProcessEngine(b *testing.B, n int, mode Mode, quorum int, phase Phase, via benchTransport) *Engine {
	b.Helper()
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = Endpoint{
			Version: fmt.Sprintf("1.%d", i),
			URL:     fmt.Sprintf("http://release-%d.invalid", i),
		}
	}
	cfg := EngineConfig{
		Releases:     eps,
		Mode:         mode,
		Quorum:       quorum,
		InitialPhase: phase,
		Monitor:      NewMonitor(monitor.WithLogCapacity(benchLogCapacity)),
	}
	switch via {
	case viaWire:
		cfg.Dial = newWireStub(b, service.AddResponse{Sum: 3}).dial
	case viaNetHTTP:
		respEnv, err := soap.Envelope(service.AddResponse{Sum: 3})
		if err != nil {
			b.Fatal(err)
		}
		cfg.HTTP = &http.Client{Transport: &stubTransport{resp: respEnv}}
	}
	engine, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = engine.Close() })
	return engine
}

// benchRecorder is a minimal reusable http.ResponseWriter: the header
// map, body buffer and status survive across requests (reset per
// iteration), so the drive loop measures the engine's own per-request
// cost instead of httptest.NewRecorder's fresh maps and the header clone
// its WriteHeader takes. The engine assigns shared header value slices,
// so reusing the map is safe.
type benchRecorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func newBenchRecorder() *benchRecorder { return &benchRecorder{header: make(http.Header)} }

func (r *benchRecorder) Header() http.Header         { return r.header }
func (r *benchRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *benchRecorder) WriteHeader(code int)        { r.code = code }
func (r *benchRecorder) reset()                      { r.body.Reset(); r.code = 0 }

// resetBody is a reusable request body: a bytes.Reader with a no-op
// Close, rewound per iteration.
type resetBody struct{ bytes.Reader }

func (*resetBody) Close() error { return nil }

// inProcessDriver drives requests straight into a handler with a
// steady-state harness: one pooled request whose body is rewound, one
// reusable recorder.
type inProcessDriver struct {
	req  *http.Request
	body *resetBody
	env  []byte
	rec  *benchRecorder
}

func newInProcessDriver(b *testing.B, payload interface{}, path string) *inProcessDriver {
	b.Helper()
	env, err := soap.Envelope(payload)
	if err != nil {
		b.Fatal(err)
	}
	return newRawInProcessDriver(env, path, soap.ContentType)
}

// newRawInProcessDriver builds a driver from raw request bytes — the
// codec-agnostic core of newInProcessDriver, used directly by the JSON
// gateway benchmarks.
func newRawInProcessDriver(body []byte, path, contentType string) *inProcessDriver {
	d := &inProcessDriver{env: body, body: &resetBody{}, rec: newBenchRecorder()}
	d.req = httptest.NewRequest(http.MethodPost, path, nil)
	d.req.Header.Set("Content-Type", contentType)
	d.req.Body = d.body
	return d
}

func (d *inProcessDriver) do(b *testing.B, h http.Handler) {
	d.body.Reset(d.env)
	d.rec.reset()
	h.ServeHTTP(d.rec, d.req)
	if d.rec.code != http.StatusOK {
		b.Fatalf("HTTP %d: %s", d.rec.code, d.rec.body.String())
	}
}

// driveInProcess measures steady state: the warm-up laps the monitor's
// event-log ring (whose slots allocate their backing exactly once) and
// fills the reply/context/fan-out/verdict pools before the timer starts.
func driveInProcess(b *testing.B, engine *Engine) {
	b.Helper()
	d := newInProcessDriver(b, service.AddRequest{A: 2, B: 1}, "/")
	for i := 0; i < benchLogCapacity+64; i++ {
		d.do(b, engine)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.do(b, engine)
	}
}

// BenchmarkEngineInProcess measures pure engine overhead per phase over
// two stub releases: the parallel fan-out versus the single-target fast
// path of the old-only/new-only phases. The *-nethttp variants run the
// same workload over the net/http fallback transport, so the wire
// client's per-call saving stays visible in every report.
func BenchmarkEngineInProcess(b *testing.B) {
	for _, tc := range []struct {
		name  string
		phase Phase
		via   benchTransport
	}{
		{"parallel", PhaseParallel, viaWire},
		{"observation", PhaseObservation, viaWire},
		{"old-only-fastpath", PhaseOldOnly, viaWire},
		{"new-only-fastpath", PhaseNewOnly, viaWire},
		{"parallel-nethttp", PhaseParallel, viaNetHTTP},
		{"old-only-fastpath-nethttp", PhaseOldOnly, viaNetHTTP},
	} {
		b.Run(tc.name, func(b *testing.B) {
			driveInProcess(b, newInProcessEngine(b, 2, ModeReliability, 0, tc.phase, tc.via))
		})
	}

	// The durable-campaign contract says journaling stays off the
	// dispatch hot path: the writer only sees transitions, release
	// changes and periodic snapshots, never per-request outcomes. This
	// variant drives the same old-only fast path with a live journal
	// attached and a snapshot loop armed; the baseline gates it at
	// exactly 0 allocs/op, so any journal code leaking into dispatch
	// fails the bench gate. The snapshot interval is a realistic 1s —
	// far longer than a 1000x run, so the loop stays parked and the
	// measurement isolates the attachment cost itself.
	// The REST/JSON gateway over the same dispatch core: canned
	// {"sum":3} replies over the wire transport, demands routed by URL
	// path. The protocol seam must not cost the hot path anything — the
	// baseline gates this at exactly 0 allocs/op, same as the SOAP
	// fast path.
	b.Run("json-fastpath", func(b *testing.B) {
		jsonBody := []byte(`{"sum":3}`)
		head := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
			len(jsonBody))
		stub := &wireStub{resp: append([]byte(head), jsonBody...)}
		eps := []Endpoint{
			{Version: "1.0", URL: "http://release-0.invalid"},
			{Version: "1.1", URL: "http://release-1.invalid"},
		}
		engine, err := NewEngine(EngineConfig{
			Releases:     eps,
			Mode:         ModeReliability,
			InitialPhase: PhaseOldOnly,
			Codec:        jsoncodec.Default,
			Monitor:      NewMonitor(monitor.WithLogCapacity(benchLogCapacity)),
			Dial:         stub.dial,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = engine.Close() })
		d := newRawInProcessDriver([]byte(`{"a":2,"b":1}`), "/add", "application/json")
		for i := 0; i < benchLogCapacity+64; i++ {
			d.do(b, engine)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.do(b, engine)
		}
	})

	b.Run("old-only-fastpath-journaled", func(b *testing.B) {
		engine := newInProcessEngine(b, 2, ModeReliability, 0, PhaseOldOnly, viaWire)
		w, _, err := journal.Open(filepath.Join(b.TempDir(), "bench.journal"))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = w.Close() })
		engine.AttachJournal(w)
		stop, err := engine.StartCampaignSnapshots(w, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(stop)
		driveInProcess(b, engine)
	})
}

// BenchmarkEngineInProcessModes measures all four §4.2 operating modes at
// 3- and 5-version redundancy — the N-version fan-out multiplies
// per-request transport cost by the number of deployed releases, so
// engine overhead must stay flat per release.
func BenchmarkEngineInProcessModes(b *testing.B) {
	for _, n := range []int{3, 5} {
		for _, mc := range []struct {
			name   string
			mode   Mode
			quorum int
		}{
			{"reliability", ModeReliability, 0},
			{"responsiveness", ModeResponsiveness, 0},
			{"dynamic-q2", ModeDynamic, 2},
			{"sequential", ModeSequential, 0},
		} {
			b.Run(fmt.Sprintf("%s-%dv", mc.name, n), func(b *testing.B) {
				driveInProcess(b, newInProcessEngine(b, n, mc.mode, mc.quorum, PhaseParallel, viaWire))
			})
		}
	}
}

// BenchmarkFleetInProcess measures the fleet router's overhead over a
// direct engine dispatch: the same stub-transport engine is driven
// straight (the ROADMAP baseline) and through a two-unit fleet's path
// router. The delta between the two sub-benchmarks is the cost of
// hosting N units behind one listener — budgeted at ≤ 1 µs/op and
// ≤ 5 allocs/op.
func BenchmarkFleetInProcess(b *testing.B) {
	stub := newWireStub(b, service.AddResponse{Sum: 3})
	unitEngine := func(prefix string) EngineConfig {
		return EngineConfig{
			Releases: []Endpoint{
				{Version: "1.0", URL: "http://" + prefix + "-old.invalid"},
				{Version: "1.1", URL: "http://" + prefix + "-new.invalid"},
			},
			InitialPhase: PhaseOldOnly,
			Dial:         stub.dial,
			Monitor:      NewMonitor(monitor.WithLogCapacity(benchLogCapacity)),
		}
	}
	drive := func(b *testing.B, h http.Handler, path string) {
		b.Helper()
		d := newInProcessDriver(b, service.AddRequest{A: 2, B: 1}, path)
		for i := 0; i < benchLogCapacity+64; i++ {
			d.do(b, h)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.do(b, h)
		}
	}

	b.Run("direct", func(b *testing.B) {
		engine, err := NewEngine(unitEngine("solo"))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = engine.Close() })
		drive(b, engine, "/")
	})
	b.Run("fleet-routed", func(b *testing.B) {
		fl, err := NewFleet(FleetConfig{Units: []FleetUnit{
			{Name: "flights", Engine: unitEngine("flights")},
			{Name: "hotels", Engine: unitEngine("hotels")},
		}})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = fl.Close() })
		drive(b, fl, "/flights/")
	})
}

// benchNoteRecord builds the canonical two-release record Note
// benchmarks drive, against a monitor with a warm (already lapped)
// event-log ring. interned selects whether the observations carry the
// monitor's pre-interned dense indices — the dispatch hot path's shape —
// or plain names resolved per observation.
func benchNoteRecord(m *monitor.Monitor, interned bool) monitor.Record {
	rec := monitor.Record{
		Operation: "add",
		Winner:    "1.1",
		Joint:     bayes.NeitherFails,
		Releases: []monitor.Observation{
			{Release: "1.0", Responded: true, Judged: true, Latency: 3 * time.Millisecond},
			{Release: "1.1", Responded: true, Judged: true, Latency: 2 * time.Millisecond},
		},
	}
	if interned {
		for i := range rec.Releases {
			rec.Releases[i].ID = m.Intern(rec.Releases[i].Release)
		}
	}
	for i := 0; i < benchLogCapacity+64; i++ {
		m.Note(rec)
	}
	return rec
}

// BenchmarkMonitorNoteParallel measures the monitoring subsystem's write
// path under concurrent recorders — every dispatched request ends in a
// Note call, so this must not become the serialization point.
func BenchmarkMonitorNoteParallel(b *testing.B) {
	m := monitor.New(monitor.WithLogCapacity(benchLogCapacity))
	rec := benchNoteRecord(m, true)
	before := m.Joint().N
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Note(rec)
		}
	})
	if got := m.Joint().N - before; got != b.N {
		b.Fatalf("joint N grew %d, want %d", got, b.N)
	}
}

// BenchmarkMonitorNote measures the single-threaded write path cost in
// steady state: interned is the dispatch hot path's shape (observations
// carry dense release indices), by-name resolves each observation
// through the lock-free interner map.
func BenchmarkMonitorNote(b *testing.B) {
	for _, tc := range []struct {
		name     string
		interned bool
	}{
		{"interned", true},
		{"by-name", false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := monitor.New(monitor.WithLogCapacity(benchLogCapacity))
			rec := benchNoteRecord(m, tc.interned)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Note(rec)
			}
		})
	}
}

// BenchmarkOracleJudge measures the per-demand judge cost of every
// oracle over a three-release reply set (agreeing releases — the steady
// state) through the caller-buffer JudgeInto API. The gate holds each
// oracle at zero steady-state allocations.
func BenchmarkOracleJudge(b *testing.B) {
	hdr := http.Header{}
	hdr.Set(oracle.InjectionHeader, "CR")
	replies := []adjudicate.Reply{
		{Release: "1.0", Body: []byte("<addResponse><sum>3</sum></addResponse>"), Header: hdr, Latency: 3 * time.Millisecond},
		{Release: "1.1", Body: []byte("<addResponse><sum>3</sum></addResponse>"), Header: hdr, Latency: 2 * time.Millisecond},
		{Release: "1.2", Body: []byte("<addResponse><sum>3</sum></addResponse>"), Header: hdr, Latency: 4 * time.Millisecond},
	}
	omission, err := oracle.NewWithOmission(oracle.Header{}, 0.05, xrand.New(11))
	if err != nil {
		b.Fatal(err)
	}
	// Sub-benchmark labels stay comma-free so every entry can join the
	// benchgate -keys list (omission's Name() contains a comma).
	for _, tc := range []struct {
		name string
		o    oracle.Oracle
	}{
		{"fault-only", oracle.FaultOnly{}},
		{"header-truth", oracle.Header{}},
		{"reference(1.0)", oracle.Reference{Release: "1.0"}},
		{"back-to-back", oracle.BackToBack{}},
		{"omission", omission},
	} {
		o := tc.o
		b.Run(tc.name, func(b *testing.B) {
			buf := make([]bool, 0, len(replies))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				failed := o.JudgeInto(buf, "add", replies)
				for _, f := range failed {
					if f {
						b.Fatal("steady-state corpus judged failed")
					}
				}
			}
		})
	}
}

// BenchmarkSOAPEnvelopeRaw measures envelope construction, which runs at
// least twice per proxied request (request re-wrap and response write).
func BenchmarkSOAPEnvelopeRaw(b *testing.B) {
	body := []byte(`<addResponse><sum>42</sum></addResponse>`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if env := soap.EnvelopeRaw(body); len(env) == 0 {
			b.Fatal("empty envelope")
		}
	}
}

// BenchmarkBlackBoxPosterior measures the single-release inference used
// for prior calibration.
func BenchmarkBlackBoxPosterior(b *testing.B) {
	bb, err := bayes.NewBlackBox(stats.ScaledBeta{Alpha: 20, Beta: 20, Upper: 0.002}, 400)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bb.Posterior(50000, 50); err != nil {
			b.Fatal(err)
		}
	}
}
