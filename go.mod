module wsupgrade

go 1.24
