// Public-API smoke tests: everything a downstream user needs must be
// reachable through the root package alone (plus the oracle/bayes
// sub-APIs re-exported by name).
package wsupgrade

import (
	"context"
	"net/http/httptest"
	"testing"

	"wsupgrade/internal/oracle"
	"wsupgrade/internal/relmodel"
	"wsupgrade/internal/service"
)

func TestPublicAPIManagedUpgrade(t *testing.T) {
	oldRel, err := NewRelease(service.DemoContract("1.0"), service.DemoBehaviours(),
		FaultPlan{Profile: OutcomeProfile{CR: 0.9, ER: 0.05, NER: 0.05}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	newRel, err := NewRelease(service.DemoContract("1.1"), service.DemoBehaviours(), FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	oldTS := httptest.NewServer(oldRel.Handler())
	defer oldTS.Close()
	newTS := httptest.NewServer(newRel.Handler())
	defer newTS.Close()

	prior := ScaledBeta{Alpha: 1, Beta: 3, Upper: 0.4}
	engine, err := NewEngine(EngineConfig{
		Releases: []Endpoint{
			{Version: "1.0", URL: oldTS.URL},
			{Version: "1.1", URL: newTS.URL},
		},
		InitialPhase: PhaseObservation,
		Oracle:       oracle.Header{},
		Inference: &WhiteBoxConfig{
			PriorA: prior, PriorB: prior,
			GridA: 30, GridB: 30, GridC: 8, GridAB: 32,
		},
		Policy: &PolicyConfig{
			Criterion:  Criterion3{Confidence: 0.9},
			CheckEvery: 20,
			MinDemands: 40,
		},
		ConfidenceTarget: 0.1,
		Seed:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	proxy := httptest.NewServer(engine.Handler())
	defer proxy.Close()

	client := &SOAPClient{URL: proxy.URL}
	ctx := context.Background()
	for i := 0; i < 150 && engine.Phase() != PhaseNewOnly; i++ {
		var out service.AddResponse
		_ = client.Call(ctx, "add", service.AddRequest{A: i, B: 1}, &out)
	}
	if engine.Phase() != PhaseNewOnly {
		t.Fatalf("managed upgrade never switched; phase = %v", engine.Phase())
	}
	rep, err := engine.Confidence("")
	if err != nil {
		t.Fatal(err)
	}
	if rep.New <= rep.Old {
		t.Fatalf("confidence: new %v should exceed old %v", rep.New, rep.Old)
	}
}

func TestPublicAPIScenariosAndSimulation(t *testing.T) {
	s1, s2 := Scenario1(), Scenario2()
	if s1.Name != "scenario-1" || s2.Name != "scenario-2" {
		t.Fatal("scenario constructors broken")
	}
	res, err := Simulate(SimConfig{
		Run:        relmodel.Runs()[0],
		Correlated: true,
		Latency:    relmodel.PaperLatency(),
		TimeOut:    1.5,
		Requests:   500,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.System.Total()+res.System.NRDT != 500 {
		t.Fatal("simulation accounting broken through facade")
	}
}

func TestPublicAPIInference(t *testing.T) {
	s1 := Scenario1()
	wb, err := NewWhiteBox(WhiteBoxConfig{
		PriorA: s1.PriorA, PriorB: s1.PriorB,
		GridA: 30, GridB: 30, GridC: 8, GridAB: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	post, err := wb.Posterior(JointCounts{N: 10000, AOnly: 10})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewCriterion1(s1.PriorA, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	_ = c1.Satisfied(post)
	_ = Criterion2{Confidence: 0.99, Target: 1e-3}.Satisfied(post)
	_ = Criterion3{Confidence: 0.99}.Satisfied(post)

	bb, err := NewBlackBox(s1.PriorA, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bb.Posterior(1000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRegistryAndComposite(t *testing.T) {
	regTS := httptest.NewServer(NewRegistry())
	defer regTS.Close()
	reg := &RegistryClient{Base: regTS.URL}
	ctx := context.Background()
	if err := reg.Publish(ctx, RegistryEntry{Name: "S", Version: "1.0", URL: "http://a"}); err != nil {
		t.Fatal(err)
	}
	entries, err := reg.Find(ctx, "S")
	if err != nil || len(entries) != 1 {
		t.Fatalf("find: %v %v", entries, err)
	}

	comp, err := NewComposite(Contract{
		Name:            "C",
		TargetNamespace: "urn:c",
		Operations:      []ContractOperation{{Name: "op"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Bind("x", "http://a"); err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor()
	if mon == nil {
		t.Fatal("monitor constructor broken")
	}
}

func TestPublicAPIStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	res, err := RunSwitchStudy(StudyConfig{
		Scenario:   Scenario2(),
		Step:       500,
		MaxDemands: 2000,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "scenario-2" {
		t.Fatal("study mislabeled")
	}
	rows, err := RunAvailabilityStudy(AvailabilityConfig{Correlated: false, Requests: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPublicAPIAdjudicators(t *testing.T) {
	for _, a := range []Adjudicator{RandomValid{}, Majority{}, FastestValid{}} {
		if a.Name() == "" {
			t.Fatal("unnamed adjudicator")
		}
	}
	var _ Oracle = FaultOnlyOracle{}
	var _ Oracle = ReferenceOracle{Release: "1.0"}
	var _ Oracle = BackToBackOracle{}
}
